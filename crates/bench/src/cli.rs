//! Command-line flag parsing shared by every scenario binary.
//!
//! All eleven harness binaries (`scenario1` … `scenario7`,
//! `scenario_k_sweep`, `scenario_multicap`, `scenario_sharded`,
//! `scenario_adaptive`) accept one flag vocabulary,
//! parsed here — scale (`--quick`, `--volunteers`/`--providers`,
//! `--duration`, `--arrival`, `--queries`), determinism (`--seed`), the
//! KnBest knobs (`--k`, `--kn`), the sharded-service knobs (`--shards`,
//! `--batch`) and output (`--csv`). Binaries that do not use a flag simply
//! ignore it, so adding a knob (like `--shards`) lands in exactly one place.

use sbqa_boinc::{Scenario, ScenarioId};

/// Command-line options shared by all scenario binaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HarnessOptions {
    /// Use the reduced preset.
    pub quick: bool,
    /// Override the number of volunteers.
    pub volunteers: Option<usize>,
    /// Override the run duration in virtual seconds.
    pub duration: Option<f64>,
    /// Override the per-project arrival rate.
    pub arrival: Option<f64>,
    /// Override the simulation seed.
    pub seed: Option<u64>,
    /// Write the time-series CSV to this path.
    pub csv: Option<String>,
    /// Override KnBest's `k` (random pre-selection width).
    pub knbest_k: Option<usize>,
    /// Override KnBest's `kn` (providers kept after the load filter).
    pub knbest_kn: Option<usize>,
    /// Shard counts to sweep (`--shards 1,2,4,8`), for the sharded-service
    /// harness.
    pub shards: Option<Vec<usize>>,
    /// Ingest chunk size for the sharded-service harness.
    pub batch: Option<usize>,
    /// Number of queries to stream through service-level harnesses.
    pub queries: Option<usize>,
}

/// The usage line shown on `--help` or a parse error.
pub const USAGE: &str = "usage: scenarioN [--quick] [--volunteers N | --providers N] \
     [--duration S] [--arrival RATE] [--seed SEED] [--k K] [--kn KN] \
     [--shards N1,N2,...] [--batch B] [--queries Q] [--csv PATH]";

impl HarnessOptions {
    /// Parses options from an argument iterator (excluding the program name).
    /// Unknown flags are reported as errors so typos do not silently run the
    /// wrong experiment.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--volunteers" => {
                    options.volunteers = Some(Self::parse_value(&mut iter, "--volunteers")?);
                }
                // The providers of the paper are BOINC volunteers; the alias
                // makes large-population runs read naturally
                // (`--providers 100000`).
                "--providers" => {
                    options.volunteers = Some(Self::parse_value(&mut iter, "--providers")?);
                }
                "--duration" => {
                    options.duration = Some(Self::parse_value(&mut iter, "--duration")?);
                }
                "--arrival" => {
                    options.arrival = Some(Self::parse_value(&mut iter, "--arrival")?);
                }
                "--seed" => options.seed = Some(Self::parse_value(&mut iter, "--seed")?),
                "--k" => options.knbest_k = Some(Self::parse_value(&mut iter, "--k")?),
                "--kn" => options.knbest_kn = Some(Self::parse_value(&mut iter, "--kn")?),
                "--shards" => {
                    let raw: String = Self::parse_value(&mut iter, "--shards")?;
                    let mut counts = Vec::new();
                    for part in raw.split(',') {
                        let count: usize = part
                            .trim()
                            .parse()
                            .map_err(|_| format!("--shards: cannot parse {part:?}"))?;
                        if count == 0 {
                            return Err("--shards: shard counts must be >= 1".to_string());
                        }
                        counts.push(count);
                    }
                    if counts.is_empty() {
                        return Err("--shards requires at least one count".to_string());
                    }
                    options.shards = Some(counts);
                }
                "--batch" => {
                    let batch: usize = Self::parse_value(&mut iter, "--batch")?;
                    if batch == 0 {
                        return Err("--batch must be >= 1".to_string());
                    }
                    options.batch = Some(batch);
                }
                "--queries" => {
                    options.queries = Some(Self::parse_value(&mut iter, "--queries")?);
                }
                "--csv" => {
                    options.csv = Some(
                        iter.next()
                            .ok_or_else(|| "--csv requires a path".to_string())?,
                    );
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(options)
    }

    fn parse_value<T: std::str::FromStr, I: Iterator<Item = String>>(
        iter: &mut I,
        flag: &str,
    ) -> Result<T, String> {
        let raw = iter
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        raw.parse()
            .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
    }

    /// Builds the scenario this invocation should run.
    #[must_use]
    pub fn scenario(&self, id: ScenarioId) -> Scenario {
        let mut scenario = if self.quick {
            Scenario::quick(id)
        } else {
            Scenario::new(id)
        };
        if let Some(volunteers) = self.volunteers {
            scenario.population = scenario.population.with_volunteers(volunteers);
        }
        if let Some(arrival) = self.arrival {
            scenario.population = scenario.population.with_arrival_rate(arrival);
        }
        if let Some(duration) = self.duration {
            scenario.sim = scenario.sim.clone().with_duration(duration);
            scenario.sim.sample_interval = (duration / 30.0).max(1.0);
        }
        if let Some(seed) = self.seed {
            scenario.sim = scenario.sim.clone().with_seed(seed);
            scenario.population = scenario.population.clone().with_seed(seed.wrapping_add(1));
        }
        if self.knbest_k.is_some() || self.knbest_kn.is_some() {
            let k = self.knbest_k.unwrap_or(scenario.sim.system.knbest_k);
            let kn = self.knbest_kn.unwrap_or(scenario.sim.system.knbest_kn);
            scenario.sim.system = scenario.sim.system.clone().with_knbest(k, kn);
        }
        scenario
    }
}

/// Parses the process arguments, printing the error (or usage) and exiting
/// with a failure status — the shared preamble of every harness binary.
#[must_use]
pub fn parse_env_or_exit() -> HarnessOptions {
    match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let options = HarnessOptions::parse(args(&[])).unwrap();
        assert_eq!(options, HarnessOptions::default());

        let options = HarnessOptions::parse(args(&[
            "--quick",
            "--volunteers",
            "25",
            "--duration",
            "60",
            "--arrival",
            "5.5",
            "--seed",
            "9",
            "--csv",
            "/tmp/out.csv",
        ]))
        .unwrap();
        assert!(options.quick);
        assert_eq!(options.volunteers, Some(25));
        assert_eq!(options.duration, Some(60.0));
        assert_eq!(options.arrival, Some(5.5));
        assert_eq!(options.seed, Some(9));
        assert_eq!(options.csv.as_deref(), Some("/tmp/out.csv"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(HarnessOptions::parse(args(&["--bogus"])).is_err());
        assert!(HarnessOptions::parse(args(&["--volunteers"])).is_err());
        assert!(HarnessOptions::parse(args(&["--volunteers", "many"])).is_err());
        assert!(HarnessOptions::parse(args(&["--help"])).is_err());
    }

    #[test]
    fn providers_flag_is_a_volunteers_alias() {
        let options = HarnessOptions::parse(args(&["--providers", "100000"])).unwrap();
        assert_eq!(options.volunteers, Some(100_000));
        assert!(HarnessOptions::parse(args(&["--providers"])).is_err());
    }

    #[test]
    fn sharding_flags_parse_and_validate() {
        let options = HarnessOptions::parse(args(&[
            "--shards",
            "1,2,4,8",
            "--batch",
            "64",
            "--queries",
            "50000",
        ]))
        .unwrap();
        assert_eq!(options.shards, Some(vec![1, 2, 4, 8]));
        assert_eq!(options.batch, Some(64));
        assert_eq!(options.queries, Some(50_000));

        // Single count and spaced lists are fine.
        let options = HarnessOptions::parse(args(&["--shards", "2"])).unwrap();
        assert_eq!(options.shards, Some(vec![2]));
        let options = HarnessOptions::parse(args(&["--shards", "1, 2"])).unwrap();
        assert_eq!(options.shards, Some(vec![1, 2]));

        // Degenerate values are rejected.
        assert!(HarnessOptions::parse(args(&["--shards", "0"])).is_err());
        assert!(HarnessOptions::parse(args(&["--shards", "two"])).is_err());
        assert!(HarnessOptions::parse(args(&["--shards"])).is_err());
        assert!(HarnessOptions::parse(args(&["--batch", "0"])).is_err());
    }

    #[test]
    fn knbest_flags_override_the_scenario_config() {
        let options = HarnessOptions::parse(args(&["--quick", "--k", "30", "--kn", "6"])).unwrap();
        assert_eq!(options.knbest_k, Some(30));
        assert_eq!(options.knbest_kn, Some(6));
        let scenario = options.scenario(ScenarioId::S1);
        assert_eq!(scenario.sim.system.knbest_k, 30);
        assert_eq!(scenario.sim.system.knbest_kn, 6);

        // A lone --kn keeps the preset's k.
        let options = HarnessOptions::parse(args(&["--quick", "--kn", "2"])).unwrap();
        let scenario = options.scenario(ScenarioId::S1);
        assert_eq!(scenario.sim.system.knbest_kn, 2);
    }

    #[test]
    fn scenario_overrides_apply() {
        let options = HarnessOptions::parse(args(&[
            "--quick",
            "--volunteers",
            "12",
            "--duration",
            "30",
            "--seed",
            "4",
        ]))
        .unwrap();
        let scenario = options.scenario(ScenarioId::S4);
        assert_eq!(scenario.population.volunteers, 12);
        assert_eq!(scenario.sim.duration, 30.0);
        assert_eq!(scenario.sim.seed, 4);
        assert!(scenario.sim.departure.is_autonomous());
    }
}
