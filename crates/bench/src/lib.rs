//! # sbqa-bench
//!
//! The experiment harness: scenario binaries (one per demonstration scenario,
//! `scenario1` … `scenario7`, plus the `scenario_k_sweep` ablation) and the
//! Criterion micro-benchmarks in `benches/`.
//!
//! Every binary accepts the same flags:
//!
//! * `--quick` — run the reduced preset (40 volunteers, 80 virtual seconds)
//!   instead of the full one (200 volunteers, 300 virtual seconds);
//! * `--volunteers N` (alias `--providers N`, e.g. `--providers 100000` for
//!   the large-population stress preset), `--duration SECONDS`,
//!   `--arrival RATE`, `--seed SEED` — override individual scale parameters;
//! * `--csv PATH` — additionally dump every time series (the analogue of the
//!   demo's live plots) as long-format CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::process::ExitCode;

use sbqa_boinc::{Scenario, ScenarioId, ScenarioOutcome};

/// Command-line options shared by all scenario binaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HarnessOptions {
    /// Use the reduced preset.
    pub quick: bool,
    /// Override the number of volunteers.
    pub volunteers: Option<usize>,
    /// Override the run duration in virtual seconds.
    pub duration: Option<f64>,
    /// Override the per-project arrival rate.
    pub arrival: Option<f64>,
    /// Override the simulation seed.
    pub seed: Option<u64>,
    /// Write the time-series CSV to this path.
    pub csv: Option<String>,
}

impl HarnessOptions {
    /// Parses options from an argument iterator (excluding the program name).
    /// Unknown flags are reported as errors so typos do not silently run the
    /// wrong experiment.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--volunteers" => {
                    options.volunteers = Some(Self::parse_value(&mut iter, "--volunteers")?);
                }
                // The providers of the paper are BOINC volunteers; the alias
                // makes large-population runs read naturally
                // (`--providers 100000`).
                "--providers" => {
                    options.volunteers = Some(Self::parse_value(&mut iter, "--providers")?);
                }
                "--duration" => {
                    options.duration = Some(Self::parse_value(&mut iter, "--duration")?);
                }
                "--arrival" => {
                    options.arrival = Some(Self::parse_value(&mut iter, "--arrival")?);
                }
                "--seed" => options.seed = Some(Self::parse_value(&mut iter, "--seed")?),
                "--csv" => {
                    options.csv = Some(
                        iter.next()
                            .ok_or_else(|| "--csv requires a path".to_string())?,
                    );
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: scenarioN [--quick] [--volunteers N | --providers N] \
                         [--duration S] [--arrival RATE] [--seed SEED] [--csv PATH]"
                            .to_string(),
                    );
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(options)
    }

    fn parse_value<T: std::str::FromStr, I: Iterator<Item = String>>(
        iter: &mut I,
        flag: &str,
    ) -> Result<T, String> {
        let raw = iter
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        raw.parse()
            .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
    }

    /// Builds the scenario this invocation should run.
    #[must_use]
    pub fn scenario(&self, id: ScenarioId) -> Scenario {
        let mut scenario = if self.quick {
            Scenario::quick(id)
        } else {
            Scenario::new(id)
        };
        if let Some(volunteers) = self.volunteers {
            scenario.population = scenario.population.with_volunteers(volunteers);
        }
        if let Some(arrival) = self.arrival {
            scenario.population = scenario.population.with_arrival_rate(arrival);
        }
        if let Some(duration) = self.duration {
            scenario.sim = scenario.sim.clone().with_duration(duration);
            scenario.sim.sample_interval = (duration / 30.0).max(1.0);
        }
        if let Some(seed) = self.seed {
            scenario.sim = scenario.sim.clone().with_seed(seed);
            scenario.population = scenario.population.clone().with_seed(seed.wrapping_add(1));
        }
        scenario
    }
}

/// Prints a scenario outcome and optionally writes its CSV.
pub fn emit(outcome: &ScenarioOutcome, options: &HarnessOptions) -> Result<(), String> {
    println!("{}", outcome.table());
    if let Some(path) = &options.csv {
        fs::write(path, outcome.series_csv())
            .map_err(|err| format!("cannot write {path}: {err}"))?;
        println!("time series written to {path}");
    }
    Ok(())
}

/// Entry point shared by the seven scenario binaries.
#[must_use]
pub fn scenario_main(id: ScenarioId) -> ExitCode {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = options.scenario(id);
    eprintln!(
        "running scenario {} ({} volunteers, {:.0} virtual seconds)…",
        id.number(),
        scenario.population.volunteers,
        scenario.sim.duration
    );
    match scenario.run() {
        Ok(outcome) => match emit(&outcome, &options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        },
        Err(err) => {
            eprintln!("scenario failed: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let options = HarnessOptions::parse(args(&[])).unwrap();
        assert_eq!(options, HarnessOptions::default());

        let options = HarnessOptions::parse(args(&[
            "--quick",
            "--volunteers",
            "25",
            "--duration",
            "60",
            "--arrival",
            "5.5",
            "--seed",
            "9",
            "--csv",
            "/tmp/out.csv",
        ]))
        .unwrap();
        assert!(options.quick);
        assert_eq!(options.volunteers, Some(25));
        assert_eq!(options.duration, Some(60.0));
        assert_eq!(options.arrival, Some(5.5));
        assert_eq!(options.seed, Some(9));
        assert_eq!(options.csv.as_deref(), Some("/tmp/out.csv"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(HarnessOptions::parse(args(&["--bogus"])).is_err());
        assert!(HarnessOptions::parse(args(&["--volunteers"])).is_err());
        assert!(HarnessOptions::parse(args(&["--volunteers", "many"])).is_err());
        assert!(HarnessOptions::parse(args(&["--help"])).is_err());
    }

    #[test]
    fn providers_flag_is_a_volunteers_alias() {
        let options = HarnessOptions::parse(args(&["--providers", "100000"])).unwrap();
        assert_eq!(options.volunteers, Some(100_000));
        assert!(HarnessOptions::parse(args(&["--providers"])).is_err());
    }

    #[test]
    fn scenario_overrides_apply() {
        let options = HarnessOptions::parse(args(&[
            "--quick",
            "--volunteers",
            "12",
            "--duration",
            "30",
            "--seed",
            "4",
        ]))
        .unwrap();
        let scenario = options.scenario(ScenarioId::S4);
        assert_eq!(scenario.population.volunteers, 12);
        assert_eq!(scenario.sim.duration, 30.0);
        assert_eq!(scenario.sim.seed, 4);
        assert!(scenario.sim.departure.is_autonomous());
    }

    #[test]
    fn emit_writes_csv_when_requested() {
        let options = HarnessOptions::parse(args(&[
            "--quick",
            "--volunteers",
            "10",
            "--duration",
            "20",
            "--arrival",
            "4",
        ]))
        .unwrap();
        let outcome = options.scenario(ScenarioId::S1).run().unwrap();
        let path = std::env::temp_dir().join("sbqa_bench_emit_test.csv");
        let mut with_csv = options.clone();
        with_csv.csv = Some(path.to_string_lossy().to_string());
        emit(&outcome, &with_csv).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("series,time,value"));
        let _ = std::fs::remove_file(&path);
    }
}
