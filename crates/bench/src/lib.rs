//! # sbqa-bench
//!
//! The experiment harness: scenario binaries (one per demonstration scenario,
//! `scenario1` … `scenario7`, plus the `scenario_k_sweep` ablation, the
//! `scenario_multicap` postings-merge experiment, the `scenario_sharded`
//! mediation-service sweep and the `scenario_adaptive` self-tuned-`kn`
//! comparison) and the Criterion micro-benchmarks in `benches/`.
//!
//! Every binary accepts the same flags, parsed by the shared [`cli`] module:
//!
//! * `--quick` — run the reduced preset (40 volunteers, 80 virtual seconds)
//!   instead of the full one (200 volunteers, 300 virtual seconds);
//! * `--volunteers N` (alias `--providers N`, e.g. `--providers 100000` for
//!   the large-population stress preset), `--duration SECONDS`,
//!   `--arrival RATE`, `--seed SEED` — override individual scale parameters;
//! * `--k K`, `--kn KN` — override the KnBest knobs of the preset;
//! * `--shards N1,N2,...`, `--batch B`, `--queries Q` — the sharded
//!   mediation-service knobs (used by `scenario_sharded` and
//!   `scenario_adaptive`);
//! * `--csv PATH` — additionally dump every time series (the analogue of the
//!   demo's live plots) as long-format CSV.

#![forbid(unsafe_code)]

pub mod cli;

use std::fs;
use std::process::ExitCode;

use sbqa_boinc::{ScenarioId, ScenarioOutcome};

pub use cli::{parse_env_or_exit, HarnessOptions};

/// Prints a scenario outcome and optionally writes its CSV.
pub fn emit(outcome: &ScenarioOutcome, options: &HarnessOptions) -> Result<(), String> {
    println!("{}", outcome.table());
    if let Some(path) = &options.csv {
        fs::write(path, outcome.series_csv())
            .map_err(|err| format!("cannot write {path}: {err}"))?;
        println!("time series written to {path}");
    }
    Ok(())
}

/// Entry point shared by the seven scenario binaries.
#[must_use]
pub fn scenario_main(id: ScenarioId) -> ExitCode {
    let options = cli::parse_env_or_exit();
    let scenario = options.scenario(id);
    eprintln!(
        "running scenario {} ({} volunteers, {:.0} virtual seconds)…",
        id.number(),
        scenario.population.volunteers,
        scenario.sim.duration
    );
    match scenario.run() {
        Ok(outcome) => match emit(&outcome, &options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        },
        Err(err) => {
            eprintln!("scenario failed: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_csv_when_requested() {
        let options = HarnessOptions::parse(
            [
                "--quick",
                "--volunteers",
                "10",
                "--duration",
                "20",
                "--arrival",
                "4",
            ]
            .iter()
            .map(|s| (*s).to_string()),
        )
        .unwrap();
        let outcome = options.scenario(ScenarioId::S1).run().unwrap();
        let path = std::env::temp_dir().join("sbqa_bench_emit_test.csv");
        let mut with_csv = options.clone();
        with_csv.csv = Some(path.to_string_lossy().to_string());
        emit(&outcome, &with_csv).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("series,time,value"));
        let _ = std::fs::remove_file(&path);
    }
}
