//! Ablation: sensitivity of SbQA to the satisfaction-window length `k`.
//!
//! The paper assumes every participant remembers its last `k` interactions
//! but does not study the effect of `k`. This binary runs the Scenario 4
//! setting (autonomous BOINC population, SbQA) with
//! `k ∈ {5, 10, 25, 50, 100, 250}` and reports how satisfaction, departures
//! and response times react: a very small window makes satisfaction — and
//! therefore ω and the departure decisions — noisy, a very large one makes
//! them sluggish.
//!
//! Flags are the same as the scenario binaries (`--quick`, `--volunteers`,
//! `--duration`, `--arrival`, `--seed`, `--csv`).

use std::process::ExitCode;

use sbqa_bench::cli;
use sbqa_boinc::{BoincPopulation, ScenarioId};
use sbqa_core::SbqaAllocator;
use sbqa_metrics::Table;
use sbqa_sim::SimulationBuilder;

fn main() -> ExitCode {
    let options = cli::parse_env_or_exit();
    let scenario = options.scenario(ScenarioId::S4);
    let population = BoincPopulation::generate(&scenario.population);

    let mut table = Table::new(
        "Satisfaction-window (k) sweep — Scenario 4 setting, SbQA",
        &[
            "k",
            "consumer sat",
            "provider sat",
            "providers kept",
            "capacity kept",
            "mean resp (s)",
            "completed",
        ],
    );

    for k in [5usize, 10, 25, 50, 100, 250] {
        let system = scenario.sim.system.clone().with_window(k);
        let sim = scenario.sim.clone().with_system(system.clone());
        let allocator = match SbqaAllocator::new(system, sim.seed) {
            Ok(allocator) => allocator,
            Err(err) => {
                eprintln!("invalid configuration for k = {k}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let report = match SimulationBuilder::new(sim)
            .allocator(Box::new(allocator))
            .consumers(population.consumers.iter().cloned())
            .providers(population.providers.iter().cloned())
            .run()
        {
            Ok(report) => report,
            Err(err) => {
                eprintln!("simulation failed for k = {k}: {err}");
                return ExitCode::FAILURE;
            }
        };
        table.add_row(&[
            k.to_string(),
            Table::num(report.final_consumer_satisfaction()),
            Table::num(report.final_provider_satisfaction()),
            format!(
                "{}/{}",
                report.participants.final_providers, report.participants.initial_providers
            ),
            Table::num(report.capacity_retention),
            Table::num(report.response.mean()),
            report.response.completed().to_string(),
        ]);
    }

    println!("{table}");
    ExitCode::SUCCESS
}
