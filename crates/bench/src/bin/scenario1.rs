//! Scenario 1 harness binary — see `sbqa_bench` crate docs for the flags.

use std::process::ExitCode;

use sbqa_bench::scenario_main;
use sbqa_boinc::ScenarioId;

fn main() -> ExitCode {
    scenario_main(ScenarioId::S1)
}
