//! Sustained overload: the satisfaction-vs-latency frontier of the
//! degradation ladder, with runtime-enforced determinism checks.
//!
//! Not one of the paper's seven scenarios: this harness measures what the
//! bounded-ring ingest front buys *past* saturation. The `scenario_sharded`
//! population is driven through the service under sustained arrival steps
//! of **1× / 10× / 100×** the base rate, each twice:
//!
//! * **unbounded** — the seed's behavior: a huge ring, no ladder. Every
//!   query gets full-quality mediation, however stale its answer;
//! * **bounded + ladder** — the degradation ladder armed: under modeled
//!   pressure the service shrinks `kn`, falls back to the capacity
//!   baseline, and finally sheds — deterministically.
//!
//! The table prints, per run: per-tier mediation counts (normal / shrunk /
//! baseline / shed), ingest-to-decision p50/p99, mean consumer satisfaction
//! over *admitted* queries, and throughput — the frontier being that the
//! bounded column trades a bounded slice of satisfaction (and the shed
//! tail) for two orders of magnitude of tail latency.
//!
//! The run then *checks* (not just reports) the overload contract and
//! exits non-zero on violation:
//!
//! * **determinism** — the 100× bounded run's outcome digest and shed-set
//!   digest are byte-identical across a re-run and across two producer
//!   chunk sizes;
//! * **coverage** — the 100× bounded run exercises all three degraded
//!   tiers (shrink, baseline, shed) and Normal;
//! * **latency** (full runs only) — the bounded 10× p99 stays ≤ 500 ms;
//! * **quality** (full runs only) — bounded 10× admitted satisfaction
//!   stays within 5% of the unloaded (1×) run's.
//!
//! Flags (see `sbqa_bench::cli`): `--quick`, `--providers N`, `--queries Q`,
//! `--shards N` (first value; default 2), `--batch B`, `--seed SEED`,
//! `--k K`, `--kn KN`.

use std::process::ExitCode;

use sbqa_bench::cli;
use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_core::DegradationConfig;
use sbqa_metrics::Table;
use sbqa_service::IngestConfig;
use sbqa_sim::{
    generate_stepped_stream, run_overload_service, ConsumerSpec, LoadStep, OverloadRunConfig,
    OverloadRunReport, ProviderSpec, WorkloadModel,
};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId, SystemConfig,
};

/// Capability classes the population spreads over.
const CLASSES: u8 = 8;

/// The arrival steps swept, as multiples of the base rate.
const STEPS: [f64; 3] = [1.0, 10.0, 100.0];

/// The latency bound the bounded front must hold at the 10× step (full
/// runs; quick runs use tiny populations where constants dominate).
const P99_BOUND_MS: f64 = 500.0;

/// Admitted satisfaction at 10× must stay within this fraction of the
/// unloaded run's.
const SATISFACTION_TOLERANCE: f64 = 0.05;

fn set(classes: &[u8]) -> CapabilitySet {
    CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
}

/// The `scenario_sharded` population shape: overlapping capability profiles.
fn providers(count: usize) -> Vec<ProviderSpec> {
    (0..count as u64)
        .map(|i| {
            let base = (i % u64::from(CLASSES)) as u8;
            let mut caps = CapabilitySet::singleton(Capability::new(base));
            if i % 3 == 0 {
                caps.insert(Capability::new((base + 1) % CLASSES));
            }
            if i % 5 == 0 {
                caps.insert(Capability::new((base + 2) % CLASSES));
            }
            ProviderSpec::new(
                ProviderId::new(1_000 + i),
                caps,
                1.0 + (i % 4) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

/// Four consumers, mixed single- and multi-capability requirements
/// (≈ 30 queries per virtual second at the base rates).
fn consumers() -> Vec<ConsumerSpec> {
    vec![
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(0),
            10.0,
            1.0,
            1,
            ConsumerProfile::default(),
        ),
        ConsumerSpec::new(
            ConsumerId::new(2),
            Capability::new(3),
            10.0,
            1.0,
            2,
            ConsumerProfile::default(),
        ),
        ConsumerSpec::new(
            ConsumerId::new(3),
            Capability::new(1),
            5.0,
            1.0,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::All(set(&[1, 2]))),
        ConsumerSpec::new(
            ConsumerId::new(4),
            Capability::new(4),
            5.0,
            1.0,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::Any(set(&[4, 5, 6]))),
    ]
}

/// The ladder the bounded runs arm. The drain model (250 admitted queries
/// per virtual second, per shard) sits far above the base rate — the 1×
/// and 10× streams ride Normal — and far below the 100× step, which must
/// climb every tier.
fn ladder() -> DegradationConfig {
    DegradationConfig {
        capacity: 256,
        drain_rate: 250.0,
        ..DegradationConfig::default()
    }
}

struct Cell {
    step: f64,
    bounded: bool,
    report: OverloadRunReport,
}

fn run_cell(
    step: f64,
    bounded: bool,
    base: &OverloadRunConfig,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[sbqa_types::Query],
) -> Result<Cell, sbqa_types::SbqaError> {
    let mut config = base.clone();
    config.ingest = if bounded {
        IngestConfig {
            ring_capacity: 1_024,
            degradation: Some(ladder()),
        }
    } else {
        IngestConfig::default()
    };
    let report = run_overload_service(&config, providers, consumers, stream)?;
    Ok(Cell {
        step,
        bounded,
        report,
    })
}

fn row(cell: &Cell) -> [String; 11] {
    let report = &cell.report;
    let latency = report.report.aggregate_latency();
    let percentiles = latency.percentiles(&[0.5, 0.99]);
    let (normal, shrunk, baseline) = match &report.degradation {
        Some(stats) => (stats.normal, stats.shrink_kn, stats.baseline),
        None => (report.report.total.submitted() as u64, 0, 0),
    };
    [
        format!("{:.0}x", cell.step),
        if cell.bounded {
            "bounded+ladder".to_string()
        } else {
            "unbounded".to_string()
        },
        normal.to_string(),
        shrunk.to_string(),
        baseline.to_string(),
        report.shed.to_string(),
        report.report.total.starved.to_string(),
        format!("{:.2}", percentiles[0] as f64 / 1e6),
        format!("{:.2}", percentiles[1] as f64 / 1e6),
        format!("{:.4}", report.admitted_satisfaction),
        format!("{:.0}", report.report.throughput_per_sec()),
    ]
}

fn main() -> ExitCode {
    let options = cli::parse_env_or_exit();
    let provider_count = options
        .volunteers
        .unwrap_or(if options.quick { 2_000 } else { 100_000 });
    let query_count = options
        .queries
        .unwrap_or(if options.quick { 5_000 } else { 50_000 });
    let shards = options
        .shards
        .as_ref()
        .and_then(|counts| counts.first().copied())
        .unwrap_or(2);
    let batch = options.batch.unwrap_or(64);
    let seed = options.seed.unwrap_or(42);
    let system = SystemConfig::default().with_knbest(
        options.knbest_k.unwrap_or(20),
        options.knbest_kn.unwrap_or(4),
    );

    eprintln!(
        "overload scenario: {provider_count} providers, {query_count} queries per step, \
         {shards} shards, batch {batch}, seed {seed}…"
    );
    let providers = providers(provider_count);
    let consumers = consumers();
    let base = OverloadRunConfig {
        shards,
        batch,
        seed,
        system,
        ingest: IngestConfig::default(),
        step: None,
    };

    let mut cells: Vec<Cell> = Vec::new();
    for multiplier in STEPS {
        let step = (multiplier > 1.0).then_some(LoadStep {
            at_fraction: 0.25,
            rate_multiplier: multiplier,
        });
        let stream = generate_stepped_stream(
            &consumers,
            &WorkloadModel::default(),
            query_count,
            seed,
            step,
        );
        let mut config = base.clone();
        config.step = step;
        for bounded in [false, true] {
            match run_cell(
                multiplier, bounded, &config, &providers, &consumers, &stream,
            ) {
                Ok(cell) => cells.push(cell),
                Err(err) => {
                    eprintln!("run at {multiplier}x (bounded: {bounded}) failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // Determinism gate at the heaviest step: re-run and re-chunk the
        // bounded configuration; every digest must agree.
        if (multiplier - STEPS[STEPS.len() - 1]).abs() < f64::EPSILON {
            let golden = &cells
                .iter()
                .rfind(|cell| cell.bounded)
                .expect("bounded cell just pushed")
                .report;
            for rechunk in [batch, batch / 2 + 1] {
                let mut check = config.clone();
                check.batch = rechunk.max(1);
                check.ingest = IngestConfig {
                    ring_capacity: 1_024,
                    degradation: Some(ladder()),
                };
                let again = match run_overload_service(&check, &providers, &consumers, &stream) {
                    Ok(report) => report,
                    Err(err) => {
                        eprintln!("determinism re-run failed: {err}");
                        return ExitCode::FAILURE;
                    }
                };
                if again.digest != golden.digest || again.shed_digest != golden.shed_digest {
                    eprintln!(
                        "determinism check FAILED at {multiplier}x chunk {rechunk}: \
                         digest {:#018x} vs {:#018x}, shed {:#018x} vs {:#018x}",
                        again.digest, golden.digest, again.shed_digest, golden.shed_digest
                    );
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "determinism check: {multiplier}x outcome digest {:#018x}, \
                 shed digest {:#018x}, stable across runs and chunkings ✓",
                golden.digest, golden.shed_digest
            );
        }
    }

    // Coverage gate: the 100x bounded run must exercise every tier.
    let heaviest = cells
        .iter()
        .rfind(|cell| cell.bounded)
        .expect("bounded cells exist");
    let stats = heaviest
        .report
        .degradation
        .expect("bounded runs arm the ladder");
    if stats.normal == 0 || stats.shrink_kn == 0 || stats.baseline == 0 || stats.shed == 0 {
        eprintln!("coverage check FAILED: 100x run missed a tier: {stats:?}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "coverage check: 100x tiers normal {} / shrunk {} / baseline {} / shed {} \
         ({} transitions) ✓",
        stats.normal, stats.shrink_kn, stats.baseline, stats.shed, stats.transitions
    );

    let mut table = Table::new(
        "Scenario overload — satisfaction-vs-latency frontier per tier",
        &[
            "step",
            "config",
            "normal",
            "shrunk-kn",
            "baseline",
            "shed",
            "starved",
            "p50 (ms)",
            "p99 (ms)",
            "admitted sat.",
            "queries/s",
        ],
    );
    for cell in &cells {
        table.add_row(&row(cell));
    }
    println!("{}", table.render());

    // Full-run acceptance gates: tail latency and admitted quality at 10x.
    if !options.quick {
        let bounded_10x = cells
            .iter()
            .find(|cell| cell.bounded && (cell.step - 10.0).abs() < f64::EPSILON)
            .expect("10x bounded cell exists");
        let p99_ms = bounded_10x.report.report.aggregate_latency().p99() as f64 / 1e6;
        if p99_ms > P99_BOUND_MS {
            eprintln!("latency check FAILED: bounded 10x p99 {p99_ms:.1} ms > {P99_BOUND_MS} ms");
            return ExitCode::FAILURE;
        }
        let unloaded = cells
            .iter()
            .find(|cell| cell.bounded && (cell.step - 1.0).abs() < f64::EPSILON)
            .expect("1x bounded cell exists");
        let reference = unloaded.report.admitted_satisfaction;
        let at_10x = bounded_10x.report.admitted_satisfaction;
        let drop = if reference.abs() > f64::EPSILON {
            (reference - at_10x) / reference.abs()
        } else {
            0.0
        };
        if drop > SATISFACTION_TOLERANCE {
            eprintln!(
                "quality check FAILED: admitted satisfaction fell {:.1}% under the 10x step \
                 ({at_10x:.4} vs {reference:.4} unloaded)",
                drop * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "acceptance: bounded 10x p99 {p99_ms:.1} ms ≤ {P99_BOUND_MS} ms, \
             admitted satisfaction {at_10x:.4} vs {reference:.4} unloaded \
             ({:+.1}%) ✓",
            -drop * 100.0
        );
    }
    ExitCode::SUCCESS
}
