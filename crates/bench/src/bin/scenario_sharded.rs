//! Sharded mediation service vs the single-mediator baseline.
//!
//! Not one of the paper's seven scenarios: this harness measures the
//! mediation *service* itself. A deterministic open-loop query stream (four
//! consumers with mixed single- and multi-capability requirements) is
//! generated once, then driven
//!
//! * through one plain instrumented `Mediator` (the baseline row), and
//! * through the sharded `MediationService` for each `--shards` count
//!   (default `1,2,4,8`): providers hash-partitioned across the shards,
//!   producers enqueueing `--batch`-sized chunks, one mediation thread per
//!   shard.
//!
//! Reported per configuration: mediated/starved tallies, ingest-to-decision
//! latency percentiles (p50/p95/p99, wall-clock) and aggregate throughput;
//! plus a per-shard latency breakdown. Both sides measure the *same*
//! quantity — availability → decision, queueing included: the service
//! stamps queries at enqueue, the baseline stamps them at drain start (the
//! whole open-loop stream is available up front). The run also *checks* the
//! service's determinism contract: with one shard the outcome stream must
//! match the baseline decision-for-decision.
//!
//! Flags (see `sbqa_bench::cli`): `--quick`, `--providers N`, `--queries Q`,
//! `--shards N1,N2,...`, `--batch B`, `--seed SEED`, `--k K`, `--kn KN`.

use std::process::ExitCode;

use sbqa_bench::cli;
use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_metrics::{LatencyRecorder, Table};
use sbqa_sim::{
    generate_query_stream, run_sharded_service, run_single_mediator, ConsumerSpec, ProviderSpec,
    ShardedRunConfig, WorkloadModel,
};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId, SystemConfig,
};

/// Capability classes the population spreads over.
const CLASSES: u8 = 8;

fn set(classes: &[u8]) -> CapabilitySet {
    CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
}

/// Overlapping capability profiles: each provider advertises its base class
/// plus, for thirds/fifths of the population, one or two neighbours — the
/// same shape the registry bench uses, so multi-class merges see non-empty
/// intersections on every shard.
fn providers(count: usize) -> Vec<ProviderSpec> {
    (0..count as u64)
        .map(|i| {
            let base = (i % u64::from(CLASSES)) as u8;
            let mut caps = CapabilitySet::singleton(Capability::new(base));
            if i % 3 == 0 {
                caps.insert(Capability::new((base + 1) % CLASSES));
            }
            if i % 5 == 0 {
                caps.insert(Capability::new((base + 2) % CLASSES));
            }
            ProviderSpec::new(
                ProviderId::new(1_000 + i),
                caps,
                1.0 + (i % 4) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

/// Four consumers: two plain single-capability issuers, one conjunctive and
/// one disjunctive multi-capability issuer.
fn consumers() -> Vec<ConsumerSpec> {
    vec![
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(0),
            10.0,
            1.0,
            1,
            ConsumerProfile::default(),
        ),
        ConsumerSpec::new(
            ConsumerId::new(2),
            Capability::new(3),
            10.0,
            1.0,
            2,
            ConsumerProfile::default(),
        ),
        ConsumerSpec::new(
            ConsumerId::new(3),
            Capability::new(1),
            5.0,
            1.0,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::All(set(&[1, 2]))),
        ConsumerSpec::new(
            ConsumerId::new(4),
            Capability::new(4),
            5.0,
            1.0,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::Any(set(&[4, 5, 6]))),
    ]
}

fn latency_row(latency: &LatencyRecorder) -> [String; 4] {
    // One sort answers the whole percentile row.
    let quantiles = latency.percentiles(&[0.50, 0.95, 0.99]);
    [
        LatencyRecorder::display_nanos(quantiles[0]),
        LatencyRecorder::display_nanos(quantiles[1]),
        LatencyRecorder::display_nanos(quantiles[2]),
        LatencyRecorder::display_nanos(latency.max_nanos()),
    ]
}

fn main() -> ExitCode {
    let options = cli::parse_env_or_exit();
    let provider_count = options
        .volunteers
        .unwrap_or(if options.quick { 2_000 } else { 100_000 });
    let query_count = options
        .queries
        .unwrap_or(if options.quick { 5_000 } else { 50_000 });
    let shard_counts = options.shards.clone().unwrap_or_else(|| vec![1, 2, 4, 8]);
    let batch = options.batch.unwrap_or(64);
    let seed = options.seed.unwrap_or(42);
    let system = SystemConfig::default().with_knbest(
        options.knbest_k.unwrap_or(20),
        options.knbest_kn.unwrap_or(4),
    );

    eprintln!(
        "sharded mediation sweep: {provider_count} providers, {query_count} queries, \
         batch {batch}, shards {shard_counts:?}, seed {seed}…"
    );
    let providers = providers(provider_count);
    let consumers = consumers();
    let workload = WorkloadModel::default();
    let stream = generate_query_stream(&consumers, &workload, query_count, seed);

    let mut table = Table::new(
        "Scenario sharded — mediation service vs single-mediator baseline",
        &[
            "config",
            "mediated",
            "starved",
            "p50",
            "p95",
            "p99",
            "max",
            "wall (ms)",
            "queries/s",
        ],
    );
    let mut shard_table = Table::new(
        "Per-shard ingest-to-decision latency",
        &["config", "shard", "drained", "p50", "p95", "p99"],
    );
    let mut cache_table = Table::new(
        "Candidate-plan cache (all shards merged)",
        &[
            "config",
            "hits",
            "misses",
            "stale rebuilds",
            "evictions",
            "hit rate",
        ],
    );
    let cache_row = |label: String, cache: sbqa_core::PlanCacheStats| {
        [
            label,
            cache.hits.to_string(),
            cache.misses.to_string(),
            cache.stale_rebuilds.to_string(),
            cache.evictions.to_string(),
            Table::num(cache.hit_rate()),
        ]
    };

    let baseline = match run_single_mediator(system.clone(), seed, &providers, &consumers, &stream)
    {
        Ok(run) => run,
        Err(err) => {
            eprintln!("baseline run failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let [p50, p95, p99, max] = latency_row(&baseline.shard.latency);
    table.add_row(&[
        "single mediator".to_string(),
        baseline.shard.report.mediated.to_string(),
        baseline.shard.report.starved.to_string(),
        p50,
        p95,
        p99,
        max,
        format!("{:.1}", baseline.wall.as_secs_f64() * 1e3),
        format!("{:.0}", baseline.throughput_per_sec()),
    ]);
    cache_table.add_row(&cache_row(
        "single mediator".to_string(),
        baseline.shard.cache,
    ));

    for &shards in &shard_counts {
        let config = ShardedRunConfig {
            shards,
            batch,
            seed,
            system: system.clone(),
        };
        let report = match run_sharded_service(&config, &providers, &consumers, &stream) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("sharded run ({shards} shards) failed: {err}");
                return ExitCode::FAILURE;
            }
        };

        // Determinism contract: one shard must reproduce the baseline
        // decision-for-decision (same queries, same winners, same order).
        if shards == 1 {
            let matches = report.outcomes.len() == baseline.outcomes.len()
                && report
                    .outcomes
                    .iter()
                    .zip(&baseline.outcomes)
                    .all(|(s, b)| {
                        s.query == b.query && s.selected == b.selected && s.starved == b.starved
                    });
            if matches {
                eprintln!("determinism check: 1-shard service ≡ single mediator ✓");
            } else {
                eprintln!("determinism check FAILED: 1-shard service diverged from baseline");
                return ExitCode::FAILURE;
            }
        }

        let aggregate = report.aggregate_latency();
        let [p50, p95, p99, max] = latency_row(&aggregate);
        table.add_row(&[
            format!(
                "service, {shards} shard{}",
                if shards == 1 { "" } else { "s" }
            ),
            report.total.mediated.to_string(),
            report.total.starved.to_string(),
            p50,
            p95,
            p99,
            max,
            format!("{:.1}", report.wall.as_secs_f64() * 1e3),
            format!("{:.0}", report.throughput_per_sec()),
        ]);
        // One shared unit per configuration (picked from the widest shard
        // p99), so the shard rows compare at a glance instead of flipping
        // units mid-column.
        cache_table.add_row(&cache_row(
            format!(
                "service, {shards} shard{}",
                if shards == 1 { "" } else { "s" }
            ),
            report.cache_stats(),
        ));
        let unit = report.shard_latency_unit();
        for shard in &report.shards {
            let quantiles = shard.latency.percentiles(&[0.50, 0.95, 0.99]);
            shard_table.add_row(&[
                format!("{shards} shards"),
                shard.shard.to_string(),
                shard.report.submitted().to_string(),
                unit.format(quantiles[0]),
                unit.format(quantiles[1]),
                unit.format(quantiles[2]),
            ]);
        }
    }

    println!("{}", table.render());
    println!("{}", shard_table.render());
    println!("{}", cache_table.render());
    ExitCode::SUCCESS
}
