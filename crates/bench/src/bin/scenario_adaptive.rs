//! Adaptive `kn` vs the static Scenario-6 sweep, under a load step.
//!
//! The paper's Scenario 6 adapts SbQA to the application by sweeping the
//! KnBest exploration width `kn` by hand; the adaptive-`kn` controller
//! (`sbqa_core::adaptive`) claims to make the sweep unnecessary. This
//! harness puts both on the **same deterministic open-loop stream** and
//! closes the feedback loops that make the choice of `kn` consequential
//! (see `sbqa_sim::adaptive`):
//!
//! * persistent consumer↔provider preferences, so intention-driven
//!   allocation concentrates work,
//! * allocation backlog mirrored into provider load and load-blended
//!   provider intentions,
//! * an **arrival-rate step** (×5 halfway through the stream),
//! * dissatisfaction departures: providers below the satisfaction
//!   threshold leave for good, taking their capacity with them.
//!
//! Compared rows: static `kn ∈ {2, 4, 8, 16}` and the adaptive controller
//! (`kn ∈ [2, 16]`, starting at 4). Reported per row: mediated/starved
//! tallies, departed providers, the aggregate per-query consumer
//! satisfaction `δs(c, q)` (whole run and post-step), and the final mean
//! width. The run **checks** the self-adaptation claim at runtime: the
//! adaptive row must match or beat the best static row on aggregate
//! consumer satisfaction (deterministic per seed, so the check is stable).
//!
//! Flags (see `sbqa_bench::cli`): `--quick`, `--providers N`,
//! `--queries Q`, `--shards N` (first value of the list; default 1),
//! `--batch B`, `--seed SEED`, `--k K`, `--csv PATH` (dumps the kn and
//! satisfaction time series of every row).

use std::process::ExitCode;

use sbqa_bench::cli;
use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_core::KnControllerConfig;
use sbqa_metrics::{Table, TimeSeries};
use sbqa_sim::{
    generate_stepped_stream, run_adaptive_case, AdaptiveRunConfig, AdaptiveRunReport, ConsumerSpec,
    LoadStep, ProviderSpec, WorkloadModel,
};
use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, SystemConfig};

/// Capability classes the population spreads over.
const CLASSES: u8 = 8;
/// The static widths of the paper's Scenario-6 sweep.
const STATIC_KNS: [usize; 4] = [2, 4, 8, 16];

/// Overlapping capability profiles (the `scenario_sharded` shape), so every
/// class keeps a healthy candidate pool.
fn providers(count: usize) -> Vec<ProviderSpec> {
    (0..count as u64)
        .map(|i| {
            let base = (i % u64::from(CLASSES)) as u8;
            let mut caps = CapabilitySet::singleton(Capability::new(base));
            if i % 3 == 0 {
                caps.insert(Capability::new((base + 1) % CLASSES));
            }
            if i % 5 == 0 {
                caps.insert(Capability::new((base + 2) % CLASSES));
            }
            ProviderSpec::new(
                ProviderId::new(1_000 + i),
                caps,
                1.0 + (i % 3) as f64 * 0.5,
                ProviderProfile::default(),
            )
        })
        .collect()
}

/// Twenty-four consumers spread over the classes, with conflicting
/// persistent preference sets (many consumers per class means no small
/// "elite" of providers can serve everyone); `rate_scale` calibrates the
/// aggregate arrival rate against the population's capacity.
fn consumers(rate_scale: f64) -> Vec<ConsumerSpec> {
    (0..24u64)
        .map(|c| {
            ConsumerSpec::new(
                ConsumerId::new(1 + c),
                Capability::new((c % u64::from(CLASSES)) as u8),
                rate_scale * if c % 3 == 0 { 1.5 } else { 1.0 } / 4.0,
                1.0,
                1 + (c % 2) as usize,
                ConsumerProfile::default(),
            )
        })
        .collect()
}

fn run_row(
    label: &str,
    config: &AdaptiveRunConfig,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[sbqa_types::Query],
    step_at: Option<sbqa_types::VirtualTime>,
) -> Result<(String, AdaptiveRunReport), String> {
    run_adaptive_case(config, providers, consumers, stream, step_at)
        .map(|report| (label.to_string(), report))
        .map_err(|err| format!("{label}: {err}"))
}

fn main() -> ExitCode {
    let options = cli::parse_env_or_exit();
    let provider_count = options
        .volunteers
        .unwrap_or(if options.quick { 320 } else { 1_200 });
    let query_count = options
        .queries
        .unwrap_or(if options.quick { 10_000 } else { 40_000 });
    let seed = options.seed.unwrap_or(42);
    let shards = options
        .shards
        .as_ref()
        .and_then(|list| list.first().copied())
        .unwrap_or(1);
    let batch = options.batch.unwrap_or(128);
    let k = options.knbest_k.unwrap_or(20);

    // Comfortably under drain capacity before the step, decidedly over it
    // after: the optimal static width genuinely changes mid-run.
    let rate_scale = provider_count as f64 / 160.0;
    let step = LoadStep {
        at_fraction: 0.5,
        rate_multiplier: 5.0,
    };

    eprintln!(
        "adaptive kn sweep: {provider_count} providers, {query_count} queries, \
         {shards} shard(s), batch {batch}, load step ×{} at {:.0}%, seed {seed}…",
        step.rate_multiplier,
        step.at_fraction * 100.0
    );

    let providers = providers(provider_count);
    let consumers = consumers(rate_scale);
    let workload = WorkloadModel::default();
    let stream = generate_stepped_stream(&consumers, &workload, query_count, seed, Some(step));
    let step_at = stream
        .get(((query_count as f64) * step.at_fraction) as usize)
        .map(|q| q.issued_at);

    let base = |kn: usize| {
        let mut config =
            AdaptiveRunConfig::new(SystemConfig::default().with_knbest(k, kn.min(k)), seed);
        config.shards = shards;
        config.batch = batch;
        // Load has real authority over provider intentions: an overloaded
        // provider refuses work it would otherwise love, which is what makes
        // over-exploration costly once the step hits.
        config.preference_weight = 0.4;
        config
    };
    // Clamp the whole width range to k so a small `--k` degrades cleanly
    // instead of producing an invalid controller configuration.
    let max_kn = 16.min(k);
    let min_kn = 2.min(max_kn);
    let controller = KnControllerConfig {
        initial_kn: 4.clamp(min_kn, max_kn),
        min_kn,
        max_kn,
        // React within a few batches: the run is short relative to the
        // controller's default caution.
        alpha: 0.5,
        step: 2,
        window: 32,
        // The per-mediation gap grows with kn (every consulted-but-rejected
        // provider contributes a zero to the provider side), so the target
        // picks the operating point: ~0.77 sits at the satisfaction knee of
        // this economy (kn ≈ 12). Overload pushes the winners' intentions
        // down, moving the gap off-target and the width with it.
        target_gap: 0.77,
        deadband: 0.04,
    };

    let mut rows: Vec<(String, AdaptiveRunReport)> = Vec::new();
    for kn in STATIC_KNS {
        if kn > k {
            eprintln!("skipping static kn {kn}: exceeds k {k}");
            continue;
        }
        match run_row(
            &format!("static kn={kn}"),
            &base(kn),
            &providers,
            &consumers,
            &stream,
            step_at,
        ) {
            Ok(row) => rows.push(row),
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let adaptive_row = match run_row(
        "adaptive",
        &base(controller.initial_kn).with_adaptive(controller),
        &providers,
        &consumers,
        &stream,
        step_at,
    ) {
        Ok(row) => row,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };

    let mut table = Table::new(
        "Scenario adaptive — self-tuned kn vs the static sweep under a ×5 load step",
        &[
            "config",
            "mediated",
            "starved",
            "departed",
            "δs(c,q) run",
            "δs(c,q) post-step",
            "final kn",
        ],
    );
    let best_static = rows
        .iter()
        .map(|(_, report)| report.mean_query_satisfaction)
        .fold(f64::NEG_INFINITY, f64::max);
    for (label, report) in rows.iter().chain(std::iter::once(&adaptive_row)) {
        table.add_row(&[
            label.clone(),
            report.total.mediated.to_string(),
            report.total.starved.to_string(),
            report.departed.to_string(),
            format!("{:.4}", report.mean_query_satisfaction),
            format!("{:.4}", report.post_step_satisfaction),
            format!("{:.1}", report.final_mean_kn),
        ]);
    }
    println!("{}", table.render());

    // The adaptive width over time, downsampled for the terminal.
    let (_, adaptive_report) = &adaptive_row;
    let kn_curve = adaptive_report.kn_series.downsample(16);
    let curve: Vec<String> = kn_curve
        .points()
        .iter()
        .map(|p| format!("{:.0}:{:.1}", p.at.seconds(), p.value))
        .collect();
    println!(
        "adaptive mean kn over virtual time (t:kn): {}",
        curve.join(" ")
    );
    let adjustments: usize = adaptive_report.kn_trails.iter().map(Vec::len).sum();
    println!(
        "controller adjustments: {adjustments} across {} shard(s)",
        adaptive_report.kn_trails.len()
    );

    if let Some(path) = &options.csv {
        let mut all: Vec<TimeSeries> = Vec::new();
        for (label, report) in rows.iter().chain(std::iter::once(&adaptive_row)) {
            let mut kn = report.kn_series.clone();
            kn.name = format!("kn/{label}");
            let mut sat = report.satisfaction_series.clone();
            sat.name = format!("satisfaction/{label}");
            all.push(kn);
            all.push(sat);
        }
        let csv = sbqa_metrics::CsvWriter::render_series(&all);
        match std::fs::write(path, csv) {
            Ok(()) => eprintln!("time series written to {path}"),
            Err(err) => {
                eprintln!("cannot write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The self-adaptation check: the adaptive row must match or beat the
    // best static width on aggregate consumer satisfaction. Deterministic
    // per seed — a failure is a real controller regression, not noise.
    let adaptive_sat = adaptive_row.1.mean_query_satisfaction;
    if adaptive_sat + 1e-3 >= best_static {
        eprintln!(
            "self-adaptation check: adaptive {adaptive_sat:.4} ≥ best static {best_static:.4} ✓"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "self-adaptation check FAILED: adaptive {adaptive_sat:.4} < best static {best_static:.4}"
        );
        ExitCode::FAILURE
    }
}
