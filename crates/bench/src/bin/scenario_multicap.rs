//! Multi-capability allocation under skewed capability overlap.
//!
//! Not one of the paper's seven scenarios: this experiment exercises the
//! postings-merge generalisation of `Pq`. The volunteer population advertises
//! capability classes with deliberately skewed coverage — class 0 is common,
//! class 1 moderate, class 2 rare — and partially overlapping profiles, so
//! conjunctive requirements (`All`) funnel queries through small
//! intersections while disjunctive ones (`Any`) fan out over large unions.
//! Three consumers issue, respectively, widened single-capability queries
//! (via the workload model's multi-capability mix), a conjunctive
//! requirement over the rare `{1, 2}` intersection, and a disjunctive
//! requirement over `{0, 2}`.
//!
//! The run compares SbQA against the Capacity and Random baselines on the
//! same population and seed, like the numbered scenario binaries, and
//! accepts the same flags (`--quick`, `--providers N`, `--duration S`,
//! `--seed SEED`, `--csv PATH`).

use std::process::ExitCode;

use sbqa_baselines::build_allocator;
use sbqa_bench::{cli, HarnessOptions};
use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_metrics::{CsvWriter, Table};
use sbqa_sim::{
    ConsumerSpec, NetworkConfig, ProviderSpec, SimulationBuilder, SimulationConfig,
    SimulationReport, WorkloadModel,
};
use sbqa_types::{
    AllocationPolicyKind, Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId,
    SystemConfig,
};

fn set(classes: &[u8]) -> CapabilitySet {
    CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
}

/// Skewed, overlapping capability profiles: per ten volunteers, five advertise
/// only the common class 0, two the `{0, 1}` overlap, two the `{1, 2}`
/// overlap and one the full `{0, 1, 2}` profile — so class 0 covers 80% of
/// the population, class 1 50% and class 2 30%, and the `{1, 2}` intersection
/// is rare.
fn providers(volunteers: usize) -> Vec<ProviderSpec> {
    (0..volunteers as u64)
        .map(|i| {
            let caps = match i % 10 {
                0..=4 => set(&[0]),
                5..=6 => set(&[0, 1]),
                7..=8 => set(&[1, 2]),
                _ => set(&[0, 1, 2]),
            };
            ProviderSpec::new(
                ProviderId::new(1_000 + i),
                caps,
                1.0 + (i % 3) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

fn consumers(arrival_rate: f64) -> Vec<ConsumerSpec> {
    vec![
        // Widens to All/Any{0, 1} for half of its queries through the
        // workload model's multi-capability mix.
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(0),
            arrival_rate,
            0.5,
            1,
            ConsumerProfile::default(),
        )
        .with_extra_capabilities(set(&[1])),
        // Conjunctive over the rare intersection: only `{1, 2}` (and
        // full-profile) volunteers qualify.
        ConsumerSpec::new(
            ConsumerId::new(2),
            Capability::new(1),
            arrival_rate / 2.0,
            0.5,
            2,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::All(set(&[1, 2]))),
        // Disjunctive over `{0, 2}`: almost the whole population qualifies.
        ConsumerSpec::new(
            ConsumerId::new(3),
            Capability::new(2),
            arrival_rate,
            0.5,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::Any(set(&[0, 2]))),
    ]
}

fn run_one(
    kind: AllocationPolicyKind,
    options: &HarnessOptions,
) -> Result<SimulationReport, String> {
    let volunteers = options
        .volunteers
        .unwrap_or(if options.quick { 40 } else { 200 });
    let duration = options
        .duration
        .unwrap_or(if options.quick { 80.0 } else { 300.0 });
    let arrival = options.arrival.unwrap_or(10.0);
    let seed = options.seed.unwrap_or(42);

    let config = SimulationConfig {
        system: SystemConfig::default().with_knbest(10, 4),
        duration,
        sample_interval: (duration / 30.0).max(1.0),
        network: NetworkConfig::default(),
        ..SimulationConfig::default()
    }
    .with_seed(seed);

    let allocator = build_allocator(kind, &config.system, seed).map_err(|err| err.to_string())?;
    SimulationBuilder::new(config)
        .allocator(allocator)
        .consumers(consumers(arrival))
        .providers(providers(volunteers))
        .workload(WorkloadModel::default().with_multi_capability_mix(0.5, 0.4))
        .run()
        .map_err(|err| err.to_string())
}

fn main() -> ExitCode {
    let options = cli::parse_env_or_exit();

    let mut table = Table::new(
        "Scenario multicap — postings-merge Pq under skewed capability overlap",
        &[
            "technique",
            "consumer sat",
            "provider sat",
            "mean resp (s)",
            "p95 resp (s)",
            "completed",
            "starved",
            "load gini",
        ],
    );
    let mut cache_table = Table::new(
        "Candidate-plan cache — multi-capability resolutions served without merge work",
        &[
            "technique",
            "hits",
            "misses",
            "stale rebuilds",
            "evictions",
            "hit rate",
        ],
    );
    let mut all_series = Vec::new();
    for kind in [
        AllocationPolicyKind::SbQA,
        AllocationPolicyKind::Capacity,
        AllocationPolicyKind::Random,
    ] {
        let report = match run_one(kind, &options) {
            Ok(report) => report,
            Err(message) => {
                eprintln!("scenario failed for {}: {message}", kind.label());
                return ExitCode::FAILURE;
            }
        };
        table.add_row(&[
            kind.label().to_string(),
            Table::num(report.final_consumer_satisfaction()),
            Table::num(report.final_provider_satisfaction()),
            Table::num(report.response.mean()),
            Table::num(report.response.p95()),
            report.response.completed().to_string(),
            report.response.starved().to_string(),
            Table::num(report.load_balance().gini),
        ]);
        let cache = report.plan_cache;
        cache_table.add_row(&[
            kind.label().to_string(),
            cache.hits.to_string(),
            cache.misses.to_string(),
            cache.stale_rebuilds.to_string(),
            cache.evictions.to_string(),
            Table::num(cache.hit_rate()),
        ]);
        for series in &report.series {
            let mut named = series.clone();
            named.name = format!("{}/{}", series.name, kind.label());
            all_series.push(named);
        }
    }

    println!("{}", table.render());
    println!("{}", cache_table.render());
    if let Some(path) = &options.csv {
        if let Err(err) = std::fs::write(path, CsvWriter::render_series(&all_series)) {
            eprintln!("cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("time series written to {path}");
    }
    ExitCode::SUCCESS
}
