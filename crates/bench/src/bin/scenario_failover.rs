//! Shard failover under load: crash primaries mid-run, promote standbys,
//! verify byte-identity, and measure what replication costs.
//!
//! Not one of the paper's seven scenarios: this harness exercises the
//! replication subsystem end-to-end. A deterministic open-loop query stream
//! (the `scenario_sharded` population) is driven twice through a
//! `ReplicatedMediator` — every shard paired with a delta-log-fed standby,
//! deterministic registry churn injected between batches:
//!
//! * once uninterrupted (the baseline trajectory), and
//! * once with **every shard's primary killed** at the stream's virtual
//!   midpoint and its standby promoted in place.
//!
//! The run then *checks* (not just reports) the failover contract: the
//! merged `(VirtualTime, QueryId)`-ordered outcome streams of the two runs
//! must be byte-identical — a mismatch exits non-zero, so CI smoke catches
//! a replay regression even without the golden test. Reported per run:
//! tallies, wall clock, throughput, per-shard replication counters (log
//! depth, applied sequence, replay lag, checkpoints, promotions) and the
//! per-promotion replay work, plus a directly measured promotion latency.
//!
//! Flags (see `sbqa_bench::cli`): `--quick`, `--providers N`, `--queries Q`,
//! `--shards N` (first value; default 2), `--batch B`, `--seed SEED`,
//! `--k K`, `--kn KN`.

use std::process::ExitCode;
use std::time::Instant;

use sbqa_bench::cli;
use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_metrics::Table;
use sbqa_sim::{
    generate_query_stream, run_replicated_service, ConsumerSpec, FailoverRunConfig,
    FailoverRunReport, FaultPlan, HashIntentions, ProviderSpec, WorkloadModel,
};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId, SystemConfig,
};

/// Capability classes the population spreads over.
const CLASSES: u8 = 8;

fn set(classes: &[u8]) -> CapabilitySet {
    CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
}

/// The `scenario_sharded` population shape: overlapping capability profiles.
fn providers(count: usize) -> Vec<ProviderSpec> {
    (0..count as u64)
        .map(|i| {
            let base = (i % u64::from(CLASSES)) as u8;
            let mut caps = CapabilitySet::singleton(Capability::new(base));
            if i % 3 == 0 {
                caps.insert(Capability::new((base + 1) % CLASSES));
            }
            if i % 5 == 0 {
                caps.insert(Capability::new((base + 2) % CLASSES));
            }
            ProviderSpec::new(
                ProviderId::new(1_000 + i),
                caps,
                1.0 + (i % 4) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

/// Four consumers, mixed single- and multi-capability requirements.
fn consumers() -> Vec<ConsumerSpec> {
    vec![
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(0),
            10.0,
            1.0,
            1,
            ConsumerProfile::default(),
        ),
        ConsumerSpec::new(
            ConsumerId::new(2),
            Capability::new(3),
            10.0,
            1.0,
            2,
            ConsumerProfile::default(),
        ),
        ConsumerSpec::new(
            ConsumerId::new(3),
            Capability::new(1),
            5.0,
            1.0,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::All(set(&[1, 2]))),
        ConsumerSpec::new(
            ConsumerId::new(4),
            Capability::new(4),
            5.0,
            1.0,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::Any(set(&[4, 5, 6]))),
    ]
}

fn run_row(label: &str, report: &FailoverRunReport) -> [String; 6] {
    let throughput = {
        let secs = report.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            report.outcomes.len() as f64 / secs
        }
    };
    [
        label.to_string(),
        report.mediated().to_string(),
        report.starved().to_string(),
        report.crashes_fired.to_string(),
        format!("{:.1}", report.wall.as_secs_f64() * 1e3),
        format!("{throughput:.0}"),
    ]
}

fn main() -> ExitCode {
    let options = cli::parse_env_or_exit();
    let provider_count = options
        .volunteers
        .unwrap_or(if options.quick { 2_000 } else { 100_000 });
    let query_count = options
        .queries
        .unwrap_or(if options.quick { 5_000 } else { 50_000 });
    let shards = options
        .shards
        .as_ref()
        .and_then(|counts| counts.first().copied())
        .unwrap_or(2);
    let batch = options.batch.unwrap_or(64);
    let seed = options.seed.unwrap_or(42);
    let system = SystemConfig::default().with_knbest(
        options.knbest_k.unwrap_or(20),
        options.knbest_kn.unwrap_or(4),
    );
    let config = FailoverRunConfig {
        shards,
        batch,
        seed,
        system,
        // Deliberately co-prime with the crash point's batch index, so the
        // promotions land mid-checkpoint-window and replay real work.
        checkpoint_interval: 7,
        churn_per_batch: 6,
    };

    eprintln!(
        "failover scenario: {provider_count} providers, {query_count} queries, \
         {shards} replicated shards, batch {batch}, seed {seed}…"
    );
    let providers = providers(provider_count);
    let consumers = consumers();
    let stream = generate_query_stream(&consumers, &WorkloadModel::default(), query_count, seed);

    let calm =
        match run_replicated_service(&config, &providers, &consumers, &stream, &FaultPlan::new()) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("uninterrupted run failed: {err}");
                return ExitCode::FAILURE;
            }
        };

    // Kill every shard's primary at the stream's virtual midpoint.
    let crash_time = stream[stream.len() / 2].issued_at;
    let mut plan = FaultPlan::new();
    for shard in 0..shards {
        plan = plan.crash_at(crash_time, shard);
    }
    let stormy = match run_replicated_service(&config, &providers, &consumers, &stream, &plan) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("crashed run failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    // The failover contract, checked at runtime: losing every primary
    // mid-stream must not change a single outcome byte.
    if calm.outcomes == stormy.outcomes && calm.outcome_digest() == stormy.outcome_digest() {
        eprintln!(
            "failover check: crashed run ≡ uninterrupted run \
             (digest {:#018x}) ✓",
            calm.outcome_digest()
        );
    } else {
        eprintln!("failover check FAILED: crashed run diverged from the uninterrupted run");
        return ExitCode::FAILURE;
    }

    let mut table = Table::new(
        "Scenario failover — replicated service, crashed vs uninterrupted",
        &[
            "config",
            "mediated",
            "starved",
            "crashes",
            "wall (ms)",
            "queries/s",
        ],
    );
    table.add_row(&run_row("uninterrupted", &calm));
    table.add_row(&run_row(
        &format!(
            "{} crashes at t={:.1}s",
            stormy.crashes_fired,
            crash_time.seconds()
        ),
        &stormy,
    ));

    // Replication counters, one row per shard of each run — one shared
    // display path for both runs, like the sharded harness's latency rows.
    let mut replication_table = Table::new(
        "Replication counters per shard",
        &[
            "config",
            "shard",
            "log depth",
            "appended",
            "applied",
            "lag",
            "checkpoints",
            "promotions",
        ],
    );
    for (label, report) in [("uninterrupted", &calm), ("crashed", &stormy)] {
        for shard in &report.shards {
            let Some(stats) = shard.replication else {
                continue;
            };
            replication_table.add_row(&[
                label.to_string(),
                shard.shard.to_string(),
                stats.log_depth.to_string(),
                stats.last_appended.to_string(),
                stats.last_applied.to_string(),
                stats.replay_lag.to_string(),
                stats.checkpoints.to_string(),
                stats.promotions.to_string(),
            ]);
        }
    }

    let mut replay_table = Table::new(
        "Promotion replay work (crashed run)",
        &[
            "shard",
            "deltas replayed",
            "queries replayed",
            "starved on replay",
        ],
    );
    for (shard, replay) in &stormy.replays {
        replay_table.add_row(&[
            shard.to_string(),
            replay.deltas_replayed.to_string(),
            (replay.queries_mediated + replay.queries_starved).to_string(),
            replay.queries_starved.to_string(),
        ]);
    }

    // Directly measured promotion latency: arm a replicated service, run
    // half the stream, then time kill-to-promoted for shard 0.
    let promotion = measure_promotion(&config, &providers, &consumers, &stream);

    println!("{}", table.render());
    println!("{}", replication_table.render());
    println!("{}", replay_table.render());
    match promotion {
        Ok(duration) => println!(
            "promotion latency (shard 0, {} providers, mid-stream): {:.2} ms",
            provider_count,
            duration.as_secs_f64() * 1e3
        ),
        Err(err) => {
            eprintln!("promotion measurement failed: {err}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs half the stream, then times `crash_shard(0)` — the kill-to-promoted
/// span a deployment would observe.
fn measure_promotion(
    config: &FailoverRunConfig,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[sbqa_types::Query],
) -> Result<std::time::Duration, sbqa_types::SbqaError> {
    let mut service =
        sbqa_service::ReplicatedMediator::sbqa(config.system.clone(), config.seed, config.shards)?;
    service.set_checkpoint_interval(config.checkpoint_interval);
    for spec in providers {
        service.register_provider(spec.id, spec.capabilities, spec.capacity)?;
    }
    for spec in consumers {
        service.register_consumer(spec.id);
    }
    let oracle = HashIntentions::new(config.seed);
    for chunk in stream[..stream.len() / 2].chunks(config.batch.max(1)) {
        service.submit_batch(chunk, &oracle, |_, _, _| {})?;
    }
    let start = Instant::now();
    service.crash_shard(0, &oracle)?;
    Ok(start.elapsed())
}
