//! Labelled time series.
//!
//! The SbQA demo draws results on-line (Figure 2b): participants'
//! satisfaction and response times as curves over virtual time.
//! [`TimeSeries`] is the storage behind our equivalent — every scenario
//! binary can dump its series as CSV, which is the textual analogue of the
//! paper's plots.

use serde::{Deserialize, Serialize};

use sbqa_types::VirtualTime;

/// One `(time, value)` observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Virtual time of the observation.
    pub at: VirtualTime,
    /// Observed value.
    pub value: f64,
}

/// A named series of observations ordered by insertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Name of the series (e.g. `"consumer_satisfaction/SbQA"`).
    pub name: String,
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends an observation. Non-finite values are skipped.
    pub fn push(&mut self, at: VirtualTime, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.points.push(TimePoint { at, value });
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observations in insertion order.
    #[must_use]
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// The most recent observation, if any.
    #[must_use]
    pub fn last(&self) -> Option<TimePoint> {
        self.points.last().copied()
    }

    /// Mean of the observed values (time-unweighted).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// Mean of the values observed at or after `from` — used to report
    /// steady-state values while skipping the warm-up phase.
    #[must_use]
    pub fn mean_after(&self, from: VirtualTime) -> f64 {
        let tail: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.at >= from)
            .map(|p| p.value)
            .collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Downsamples the series to at most `max_points` observations, keeping
    /// the first and last point. Useful before rendering long runs.
    #[must_use]
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        let max_points = max_points.max(2);
        if self.points.len() <= max_points {
            return self.clone();
        }
        let mut out = TimeSeries::new(self.name.clone());
        let step = (self.points.len() - 1) as f64 / (max_points - 1) as f64;
        for i in 0..max_points {
            let idx = (i as f64 * step).round() as usize;
            let p = self.points[idx.min(self.points.len() - 1)];
            out.points.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for (t, v) in values {
            s.push(VirtualTime::new(*t), *v);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let s = series(&[(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last().unwrap().value, 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut s = TimeSeries::new("t");
        s.push(VirtualTime::new(0.0), f64::NAN);
        s.push(VirtualTime::new(1.0), f64::INFINITY);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn mean_after_skips_warmup() {
        let s = series(&[(0.0, 100.0), (10.0, 1.0), (20.0, 3.0)]);
        assert!((s.mean_after(VirtualTime::new(10.0)) - 2.0).abs() < 1e-12);
        assert_eq!(s.mean_after(VirtualTime::new(100.0)), 0.0);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TimeSeries::new("big");
        for i in 0..1000 {
            s.push(VirtualTime::new(i as f64), i as f64);
        }
        let small = s.downsample(10);
        assert_eq!(small.len(), 10);
        assert_eq!(small.points()[0].value, 0.0);
        assert_eq!(small.points()[9].value, 999.0);
        // Downsampling a short series is a no-op.
        let tiny = series(&[(0.0, 1.0)]);
        assert_eq!(tiny.downsample(10).len(), 1);
    }
}
