//! Load-balance indicators.
//!
//! Scenario 5 claims that when providers care about their load, SbQA
//! "balances better queries among volunteers". [`LoadBalanceReport`]
//! quantifies that claim for any allocation technique: given the number of
//! queries each provider performed (optionally weighted by provider
//! capacity), it reports the coefficient of variation, the max/mean ratio and
//! the Gini coefficient of the distribution.

use serde::{Deserialize, Serialize};

use crate::gini::gini_coefficient;
use crate::summary::Summary;

/// Aggregate description of how evenly load was spread over providers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadBalanceReport {
    /// Number of providers considered.
    pub providers: usize,
    /// Mean load per provider.
    pub mean_load: f64,
    /// Standard deviation of per-provider load.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`), 0 when the mean is 0.
    pub coefficient_of_variation: f64,
    /// Ratio of the most loaded provider to the mean, 0 when the mean is 0.
    pub max_over_mean: f64,
    /// Gini coefficient of the load distribution (0 = perfectly even).
    pub gini: f64,
}

impl LoadBalanceReport {
    /// Builds a report from the per-provider load (e.g. queries performed or
    /// busy time).
    #[must_use]
    pub fn from_loads(loads: &[f64]) -> Self {
        let summary = Summary::from_values(loads);
        let mean = summary.mean();
        let std_dev = summary.std_dev();
        Self {
            providers: loads.len(),
            mean_load: mean,
            std_dev,
            coefficient_of_variation: if mean > 0.0 { std_dev / mean } else { 0.0 },
            max_over_mean: if mean > 0.0 {
                summary.max() / mean
            } else {
                0.0
            },
            gini: gini_coefficient(loads),
        }
    }

    /// Builds a report from per-provider load normalised by per-provider
    /// capacity (utilization-style balance): a powerful provider is *expected*
    /// to perform more queries, so fairness should be judged per unit of
    /// capacity.
    ///
    /// Providers with non-positive capacity are skipped.
    #[must_use]
    pub fn from_loads_and_capacities(loads: &[f64], capacities: &[f64]) -> Self {
        let normalised: Vec<f64> = loads
            .iter()
            .zip(capacities.iter())
            .filter(|(_, c)| **c > 0.0)
            .map(|(l, c)| l / c)
            .collect();
        Self::from_loads(&normalised)
    }

    /// `true` if this report describes a more even distribution than `other`,
    /// judged by the Gini coefficient.
    #[must_use]
    pub fn is_more_balanced_than(&self, other: &LoadBalanceReport) -> bool {
        self.gini < other.gini
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_load_has_zero_dispersion() {
        let report = LoadBalanceReport::from_loads(&[10.0, 10.0, 10.0]);
        assert_eq!(report.providers, 3);
        assert_eq!(report.coefficient_of_variation, 0.0);
        assert_eq!(report.gini, 0.0);
        assert!((report.max_over_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_load_is_detected() {
        let even = LoadBalanceReport::from_loads(&[10.0, 10.0, 10.0, 10.0]);
        let skewed = LoadBalanceReport::from_loads(&[40.0, 0.0, 0.0, 0.0]);
        assert!(even.is_more_balanced_than(&skewed));
        assert!(skewed.max_over_mean > 3.9);
        assert!(skewed.gini > 0.7);
    }

    #[test]
    fn capacity_normalisation_rehabilitates_powerful_providers() {
        // Provider 0 is 4x as powerful and performs 4x the queries: perfectly
        // fair once normalised.
        let raw = LoadBalanceReport::from_loads(&[40.0, 10.0]);
        let normalised = LoadBalanceReport::from_loads_and_capacities(&[40.0, 10.0], &[4.0, 1.0]);
        assert!(raw.gini > 0.0);
        assert!(normalised.gini.abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_providers_are_skipped() {
        let report = LoadBalanceReport::from_loads_and_capacities(&[5.0, 7.0], &[1.0, 0.0]);
        assert_eq!(report.providers, 1);
    }

    #[test]
    fn empty_loads_yield_empty_report() {
        let report = LoadBalanceReport::from_loads(&[]);
        assert_eq!(report.providers, 0);
        assert_eq!(report.mean_load, 0.0);
        assert_eq!(report.max_over_mean, 0.0);
    }

    proptest! {
        #[test]
        fn prop_report_fields_are_finite(loads in proptest::collection::vec(0.0f64..1e6, 0..100)) {
            let report = LoadBalanceReport::from_loads(&loads);
            prop_assert!(report.mean_load.is_finite());
            prop_assert!(report.coefficient_of_variation.is_finite());
            prop_assert!(report.max_over_mean.is_finite());
            prop_assert!((0.0..=1.0).contains(&report.gini));
        }
    }
}
