//! Response-time accounting.
//!
//! Every scenario reports response times next to satisfaction: SbQA's thesis
//! is that satisfying participants does not have to cost much performance in
//! captive environments and actually *wins* performance in autonomous ones
//! (because capacity stays online). [`ResponseTimeStats`] collects completed
//! and starved queries and produces the columns used by the scenario tables.

use serde::{Deserialize, Serialize};

use sbqa_types::{Duration, QueryOutcome, VirtualTime};

use crate::summary::Summary;

/// Collector for query response times and completion counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResponseTimeStats {
    completed: Summary,
    starved: u64,
    unfinished: u64,
    last_completion: Option<VirtualTime>,
}

impl ResponseTimeStats {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed query's response time.
    pub fn record_response(&mut self, response_time: Duration) {
        self.completed.record(response_time.seconds());
    }

    /// Records a query that could not be allocated at all.
    pub fn record_starved(&mut self) {
        self.starved += 1;
    }

    /// Records a query that was allocated but never completed before the end
    /// of the run (still in a provider queue).
    pub fn record_unfinished(&mut self) {
        self.unfinished += 1;
    }

    /// Records a [`QueryOutcome`], dispatching to the appropriate counter.
    pub fn record_outcome(&mut self, outcome: &QueryOutcome) {
        if outcome.starved {
            self.record_starved();
            return;
        }
        match outcome.response_time() {
            Some(rt) => {
                self.record_response(rt);
                self.last_completion = match self.last_completion {
                    Some(prev) => Some(prev.max(outcome.completed_at.unwrap_or(prev))),
                    None => outcome.completed_at,
                };
            }
            None => self.record_unfinished(),
        }
    }

    /// Number of completed queries.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.count()
    }

    /// Number of queries the mediator could not place.
    #[must_use]
    pub fn starved(&self) -> u64 {
        self.starved
    }

    /// Number of allocated-but-unfinished queries.
    #[must_use]
    pub fn unfinished(&self) -> u64 {
        self.unfinished
    }

    /// Total number of observed queries.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.completed() + self.starved + self.unfinished
    }

    /// Mean response time of completed queries, in virtual seconds.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.completed.mean()
    }

    /// Median response time of completed queries.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.completed.median()
    }

    /// 95th-percentile response time of completed queries.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.completed.percentile(0.95)
    }

    /// Maximum response time of completed queries.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.completed.max()
    }

    /// Fraction of queries that completed.
    #[must_use]
    pub fn completion_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        self.completed() as f64 / total as f64
    }

    /// Throughput in completed queries per virtual second, measured against
    /// the supplied run length.
    #[must_use]
    pub fn throughput(&self, run_length: Duration) -> f64 {
        if run_length.seconds() <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / run_length.seconds()
    }

    /// Access to the underlying response-time summary.
    #[must_use]
    pub fn summary(&self) -> &Summary {
        &self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{ConsumerId, ProviderId, QueryId};

    fn outcome(issued: f64, completed: Option<f64>, starved: bool) -> QueryOutcome {
        QueryOutcome {
            query: QueryId::new(1),
            consumer: ConsumerId::new(1),
            performed_by: if starved {
                vec![]
            } else {
                vec![ProviderId::new(1)]
            },
            issued_at: VirtualTime::new(issued),
            completed_at: completed.map(VirtualTime::new),
            starved,
        }
    }

    #[test]
    fn records_and_classifies_outcomes() {
        let mut stats = ResponseTimeStats::new();
        stats.record_outcome(&outcome(0.0, Some(2.0), false));
        stats.record_outcome(&outcome(1.0, Some(5.0), false));
        stats.record_outcome(&outcome(2.0, None, false));
        stats.record_outcome(&outcome(3.0, None, true));

        assert_eq!(stats.completed(), 2);
        assert_eq!(stats.unfinished(), 1);
        assert_eq!(stats.starved(), 1);
        assert_eq!(stats.total(), 4);
        assert!((stats.mean() - 3.0).abs() < 1e-12);
        assert!((stats.completion_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_benign_defaults() {
        let stats = ResponseTimeStats::new();
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.completion_rate(), 1.0);
        assert_eq!(stats.throughput(Duration::new(100.0)), 0.0);
    }

    #[test]
    fn throughput_uses_run_length() {
        let mut stats = ResponseTimeStats::new();
        for i in 0..10 {
            stats.record_outcome(&outcome(i as f64, Some(i as f64 + 1.0), false));
        }
        assert!((stats.throughput(Duration::new(20.0)) - 0.5).abs() < 1e-12);
        assert_eq!(stats.throughput(Duration::ZERO), 0.0);
    }

    #[test]
    fn percentiles_track_tail_latency() {
        let mut stats = ResponseTimeStats::new();
        for rt in [1.0, 1.0, 1.0, 1.0, 50.0] {
            stats.record_response(Duration::new(rt));
        }
        assert!(stats.p95() >= stats.median());
        assert_eq!(stats.max(), 50.0);
    }
}
