//! # sbqa-metrics
//!
//! Measurement primitives for the SbQA experiments: time series, summary
//! statistics, fairness indices, load-balance indicators, response-time
//! accounting and lightweight table / CSV rendering for the scenario
//! harnesses.
//!
//! The crate is deliberately independent of the allocation logic so that any
//! allocation technique — SbQA or a baseline — is measured with exactly the
//! same instruments, which is what makes the scenario comparisons meaningful.

#![forbid(unsafe_code)]

pub mod balance;
pub mod csv;
pub mod gini;
pub mod latency;
pub mod response;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use balance::LoadBalanceReport;
pub use csv::CsvWriter;
pub use gini::gini_coefficient;
pub use latency::{LatencyRecorder, LatencyUnit};
pub use response::ResponseTimeStats;
pub use summary::Summary;
pub use table::Table;
pub use timeseries::{TimePoint, TimeSeries};
