//! Streaming summary statistics.
//!
//! [`Summary`] accumulates observations one by one (Welford's online
//! algorithm for mean and variance) and keeps the sorted sample needed for
//! percentile queries. It is the workhorse behind the response-time and
//! satisfaction columns of every scenario table.

use serde::{Deserialize, Serialize};

/// Online summary of a stream of `f64` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a summary from a slice of observations.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let mut summary = Self::new();
        for v in values {
            summary.record(*v);
        }
        summary
    }

    /// Records one observation. Non-finite values are ignored so that a
    /// single corrupted sample cannot poison a whole experiment column.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
        self.samples.push(value);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        for v in &other.samples {
            self.record(*v);
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min.unwrap_or(0.0)
    }

    /// Largest observation, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max.unwrap_or(0.0)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on the sorted sample,
    /// or 0 if empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sbqa_types::float_ord::sort_ascending(&mut sorted);
        let q = q.clamp(0.0, 1.0);
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Returns the raw samples recorded so far.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn basic_statistics_are_exact_on_small_samples() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = Summary::from_values(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.median(), 30.0);
        assert_eq!(s.percentile(1.0), 50.0);
        assert_eq!(s.percentile(0.95), 50.0);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Summary::from_values(&[1.0, 2.0]);
        let b = Summary::from_values(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_mean_within_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_values(&values);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn prop_percentiles_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::from_values(&values);
            prop_assert!(s.percentile(0.25) <= s.percentile(0.75) + 1e-9);
            prop_assert!(s.percentile(0.0) <= s.percentile(1.0) + 1e-9);
        }

        #[test]
        fn prop_online_mean_matches_naive(values in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let s = Summary::from_values(&values);
            let naive = values.iter().sum::<f64>() / values.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6);
        }
    }
}
