//! Minimal CSV rendering for time series.
//!
//! The scenario binaries can emit their time series as CSV so that the
//! "on-line drawing" of the demo (Figure 2b) can be reproduced with any
//! plotting tool. We only *write* CSV and only for our own well-formed data,
//! so a dependency-free writer with basic quoting is sufficient.

use std::fmt::Write as _;

use crate::timeseries::TimeSeries;

/// Writer that renders rows of string-able cells as CSV text.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    buffer: String,
}

impl CsvWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row.
    pub fn write_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let escaped: Vec<String> = cells.iter().map(|c| Self::escape(c.as_ref())).collect();
        let _ = writeln!(self.buffer, "{}", escaped.join(","));
    }

    /// Returns the accumulated CSV text.
    #[must_use]
    pub fn finish(self) -> String {
        self.buffer
    }

    /// Quotes a cell if it contains a comma, a quote or a newline.
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    /// Renders a set of time series sharing a time axis as long-format CSV
    /// with columns `series,time,value`.
    #[must_use]
    pub fn render_series(series: &[TimeSeries]) -> String {
        let mut writer = CsvWriter::new();
        writer.write_row(&["series", "time", "value"]);
        for s in series {
            for point in s.points() {
                writer.write_row(&[
                    s.name.clone(),
                    format!("{:.6}", point.at.seconds()),
                    format!("{:.6}", point.value),
                ]);
            }
        }
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::VirtualTime;

    #[test]
    fn rows_are_comma_separated_lines() {
        let mut w = CsvWriter::new();
        w.write_row(&["a", "b", "c"]);
        w.write_row(&["1", "2", "3"]);
        assert_eq!(w.finish(), "a,b,c\n1,2,3\n");
    }

    #[test]
    fn cells_with_special_characters_are_quoted() {
        let mut w = CsvWriter::new();
        w.write_row(&["hello, world", "say \"hi\"", "line\nbreak"]);
        let out = w.finish();
        assert!(out.contains("\"hello, world\""));
        assert!(out.contains("\"say \"\"hi\"\"\""));
        assert!(out.contains("\"line\nbreak\""));
    }

    #[test]
    fn series_render_in_long_format() {
        let mut s1 = TimeSeries::new("sat/SbQA");
        s1.push(VirtualTime::new(1.0), 0.9);
        let mut s2 = TimeSeries::new("sat/Capacity");
        s2.push(VirtualTime::new(1.0), 0.4);
        let csv = CsvWriter::render_series(&[s1, s2]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,time,value");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("sat/SbQA,1.000000,0.900000"));
        assert!(lines[2].starts_with("sat/Capacity,"));
    }
}
