//! Plain-text table rendering for scenario reports.
//!
//! Each scenario binary prints the rows the paper's demo GUIs displayed
//! (satisfaction per technique, response times, providers kept online). The
//! output format is a simple aligned text table, stable enough to diff across
//! runs.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Adds a row of pre-formatted cells. Rows shorter than the header are
    /// padded with empty cells; longer rows are truncated.
    pub fn add_row<S: ToString>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(ToString::to_string).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Formats a floating-point cell with three decimals.
    #[must_use]
    pub fn num(value: f64) -> String {
        format!("{value:.3}")
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_and_rows() {
        let mut table = Table::new("Scenario 1", &["technique", "consumer sat", "provider sat"]);
        table.add_row(&["Capacity", "0.812", "0.341"]);
        table.add_row(&["Economic", "0.733", "0.402"]);
        let text = table.render();
        assert!(text.contains("== Scenario 1 =="));
        assert!(text.contains("technique"));
        assert!(text.contains("Capacity"));
        assert!(text.contains("0.402"));
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.title(), "Scenario 1");
        // Display and render agree.
        assert_eq!(text, table.to_string());
    }

    #[test]
    fn rows_are_padded_and_truncated_to_header_width() {
        let mut table = Table::new("t", &["a", "b"]);
        table.add_row(&["only-one"]);
        table.add_row(&["x", "y", "z"]);
        let text = table.render();
        assert!(text.contains("only-one"));
        assert!(!text.contains('z'));
    }

    #[test]
    fn num_formats_three_decimals() {
        assert_eq!(Table::num(1.0), "1.000");
        assert_eq!(Table::num(0.123456), "0.123");
    }

    #[test]
    fn columns_align_on_longest_cell() {
        let mut table = Table::new("align", &["name", "v"]);
        table.add_row(&["a-very-long-name", "1"]);
        table.add_row(&["b", "2"]);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        // Header, separator and two rows after the title line.
        assert_eq!(lines.len(), 5);
        // Both data rows have the same column offset for the second column.
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find('2').unwrap(), col);
    }
}
