//! Tail-latency instrumentation.
//!
//! The sharded mediation service measures how long each query spends between
//! ingest and decision, in *wall-clock nanoseconds* — unlike the rest of the
//! crate, which works in virtual seconds, latency here is a property of the
//! machine, not of the simulated world. [`LatencyRecorder`] accumulates the
//! per-query samples of one shard (or one baseline run) and answers the
//! percentile questions every service comparison needs: p50, p95 and p99.
//!
//! The recorder is deliberately exact, not a sketch: scenario-scale runs
//! observe at most a few hundred thousand queries, so keeping the raw `u64`
//! samples is cheap and makes percentiles reproducible to the nanosecond.
//! Shards record independently and their recorders [`merge`] into the
//! aggregate view at report time.
//!
//! [`merge`]: LatencyRecorder::merge

use serde::{Deserialize, Serialize};

/// Collector of per-query latency samples with percentile queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LatencyRecorder {
    /// Raw samples in nanoseconds, in arrival order.
    samples: Vec<u64>,
    /// Running sum, for the O(1) mean. Saturating: 2^64 ns is ~584 years of
    /// accumulated latency, far beyond any run this crate measures.
    total_nanos: u64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample, in nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.samples.push(nanos);
        self.total_nanos = self.total_nanos.saturating_add(nanos);
    }

    /// Records one latency sample from a wall-clock duration.
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_nanos(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds another recorder's samples into this one (used to aggregate the
    /// per-shard views into a whole-service distribution).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in nanoseconds, or 0 if empty.
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.total_nanos as f64 / self.samples.len() as f64
    }

    /// Largest recorded sample in nanoseconds, or 0 if empty.
    #[must_use]
    pub fn max_nanos(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Answers several quantile queries (each 0 ≤ q ≤ 1) from **one** sort
    /// of the sample — the way to read a whole percentile row (p50/p95/p99)
    /// without re-sorting per quantile. Nearest-rank; 0s if empty.
    #[must_use]
    pub fn percentiles(&self, qs: &[f64]) -> Vec<u64> {
        if self.samples.is_empty() {
            return vec![0; qs.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        qs.iter()
            .map(|q| {
                let q = q.clamp(0.0, 1.0);
                let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
                sorted[rank.min(sorted.len() - 1)]
            })
            .collect()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds, nearest-rank on the
    /// sorted sample; 0 if empty. For several quantiles at once, prefer
    /// [`LatencyRecorder::percentiles`], which sorts once.
    #[must_use]
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        self.percentiles(&[q])[0]
    }

    /// Median latency (p50) in nanoseconds.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile_nanos(0.50)
    }

    /// 95th-percentile latency in nanoseconds.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile_nanos(0.95)
    }

    /// 99th-percentile latency — the tail the sharding comparison is about.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile_nanos(0.99)
    }

    /// Formats a nanosecond figure with an adaptive unit (`ns`, `µs`, `ms`,
    /// `s`), for the scenario tables.
    ///
    /// The unit is chosen **per value**, which reads well for a single
    /// figure but makes a column of figures hard to compare (`980.00µs` next
    /// to `1.02ms`). When formatting a row or column of related figures —
    /// per-shard percentile tables, notably — pick one [`LatencyUnit`] for
    /// the whole group instead.
    #[must_use]
    pub fn display_nanos(nanos: u64) -> String {
        LatencyUnit::for_nanos(nanos).format(nanos)
    }
}

/// A fixed latency display unit, for formatting groups of related figures
/// (e.g. every shard row of a `ServiceReport` table) with **one shared
/// unit** so the magnitudes compare at a glance.
///
/// Pick the unit from the group's largest figure with
/// [`LatencyUnit::for_nanos`], then format every member with
/// [`LatencyUnit::format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyUnit {
    /// Nanoseconds (`ns`).
    Nanos,
    /// Microseconds (`µs`).
    Micros,
    /// Milliseconds (`ms`).
    Millis,
    /// Seconds (`s`).
    Secs,
}

impl LatencyUnit {
    /// The unit [`LatencyRecorder::display_nanos`] would pick for this
    /// figure — call it on a group's *largest* member to get a shared unit
    /// every smaller member still reads naturally in.
    #[must_use]
    pub fn for_nanos(nanos: u64) -> Self {
        if nanos < 1_000 {
            LatencyUnit::Nanos
        } else if nanos < 1_000_000 {
            LatencyUnit::Micros
        } else if nanos < 1_000_000_000 {
            LatencyUnit::Millis
        } else {
            LatencyUnit::Secs
        }
    }

    /// The unit's display suffix.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LatencyUnit::Nanos => "ns",
            LatencyUnit::Micros => "µs",
            LatencyUnit::Millis => "ms",
            LatencyUnit::Secs => "s",
        }
    }

    /// Converts a nanosecond figure into this unit.
    #[must_use]
    pub fn convert(self, nanos: u64) -> f64 {
        let nanos = nanos as f64;
        match self {
            LatencyUnit::Nanos => nanos,
            LatencyUnit::Micros => nanos / 1_000.0,
            LatencyUnit::Millis => nanos / 1_000_000.0,
            LatencyUnit::Secs => nanos / 1_000_000_000.0,
        }
    }

    /// Formats a nanosecond figure in this unit (no decimals for `ns`, two
    /// otherwise).
    #[must_use]
    pub fn format(self, nanos: u64) -> String {
        match self {
            LatencyUnit::Nanos => format!("{nanos}ns"),
            unit => format!("{:.2}{}", unit.convert(nanos), unit.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_has_benign_defaults() {
        let recorder = LatencyRecorder::new();
        assert!(recorder.is_empty());
        assert_eq!(recorder.count(), 0);
        assert_eq!(recorder.mean_nanos(), 0.0);
        assert_eq!(recorder.max_nanos(), 0);
        assert_eq!(recorder.p50(), 0);
        assert_eq!(recorder.p99(), 0);
    }

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_samples() {
        let mut recorder = LatencyRecorder::new();
        // Recorded out of order on purpose.
        for nanos in [500u64, 100, 300, 200, 400] {
            recorder.record_nanos(nanos);
        }
        assert_eq!(recorder.count(), 5);
        assert_eq!(recorder.p50(), 300);
        assert_eq!(recorder.percentile_nanos(0.0), 100);
        assert_eq!(recorder.percentile_nanos(1.0), 500);
        assert_eq!(recorder.p95(), 500);
        assert_eq!(recorder.max_nanos(), 500);
        assert!((recorder.mean_nanos() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn p99_tracks_the_tail() {
        let mut recorder = LatencyRecorder::new();
        for _ in 0..98 {
            recorder.record_nanos(1_000);
        }
        // A 2% tail: nearest-rank p99 (index 98 of 100) lands inside it.
        recorder.record_nanos(1_000_000);
        recorder.record_nanos(2_000_000);
        assert_eq!(recorder.p50(), 1_000);
        assert_eq!(recorder.p95(), 1_000);
        assert_eq!(recorder.p99(), 1_000_000);
    }

    #[test]
    fn percentiles_answers_many_quantiles_from_one_sort() {
        let mut recorder = LatencyRecorder::new();
        for nanos in [500u64, 100, 300, 200, 400] {
            recorder.record_nanos(nanos);
        }
        assert_eq!(recorder.percentiles(&[0.0, 0.5, 1.0]), vec![100, 300, 500]);
        assert_eq!(
            recorder.percentiles(&[0.5, 0.95, 0.99]),
            vec![recorder.p50(), recorder.p95(), recorder.p99()]
        );
        assert_eq!(LatencyRecorder::new().percentiles(&[0.5, 0.99]), vec![0, 0]);
    }

    #[test]
    fn merge_combines_shard_distributions() {
        let mut a = LatencyRecorder::new();
        a.record_nanos(100);
        a.record_nanos(200);
        let mut b = LatencyRecorder::new();
        b.record_nanos(300);
        b.record_nanos(400);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean_nanos() - 250.0).abs() < 1e-9);
        assert_eq!(a.percentile_nanos(1.0), 400);

        // Merging an empty recorder changes nothing.
        a.merge(&LatencyRecorder::new());
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn record_accepts_std_durations() {
        let mut recorder = LatencyRecorder::new();
        recorder.record(std::time::Duration::from_micros(3));
        assert_eq!(recorder.max_nanos(), 3_000);
    }

    #[test]
    fn display_adapts_units() {
        assert_eq!(LatencyRecorder::display_nanos(750), "750ns");
        assert_eq!(LatencyRecorder::display_nanos(1_500), "1.50µs");
        assert_eq!(LatencyRecorder::display_nanos(2_500_000), "2.50ms");
        assert_eq!(LatencyRecorder::display_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn shared_unit_formats_a_whole_group_comparably() {
        // The per-recorder adaptive display renders these two figures in
        // *different* units — visually incomparable in a table column.
        assert_eq!(LatencyRecorder::display_nanos(980_000), "980.00µs");
        assert_eq!(LatencyRecorder::display_nanos(1_020_000), "1.02ms");

        // A shared unit picked from the group's maximum fixes that.
        let unit = LatencyUnit::for_nanos(1_020_000);
        assert_eq!(unit, LatencyUnit::Millis);
        assert_eq!(unit.format(980_000), "0.98ms");
        assert_eq!(unit.format(1_020_000), "1.02ms");
        assert_eq!(unit.label(), "ms");
    }

    #[test]
    fn unit_selection_matches_the_adaptive_display() {
        for nanos in [1u64, 999, 1_000, 999_999, 1_000_000, 5_000_000_000] {
            let unit = LatencyUnit::for_nanos(nanos);
            assert_eq!(unit.format(nanos), LatencyRecorder::display_nanos(nanos));
        }
        assert_eq!(LatencyUnit::Nanos.convert(750), 750.0);
        assert!((LatencyUnit::Secs.convert(1_500_000_000) - 1.5).abs() < 1e-12);
    }
}
