//! The Gini coefficient, used as a fairness index.
//!
//! The scenario reports use the Gini coefficient over two distributions:
//!
//! * queries performed per provider (is the load shared fairly?), and
//! * satisfaction per participant (are a few participants hoarding all the
//!   satisfaction?).
//!
//! A coefficient of `0` means perfect equality, `1` means one participant
//! gets everything.

/// Computes the Gini coefficient of a set of non-negative quantities.
///
/// Negative inputs are clamped to zero (a provider cannot perform a negative
/// number of queries); an empty slice or an all-zero slice yields `0.0`.
#[must_use]
pub fn gini_coefficient(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().map(|v| v.max(0.0)).collect();
    sbqa_types::float_ord::sort_ascending(&mut sorted);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 * Σ_i i*x_i) / (n * Σ x) - (n + 1) / n, with i starting at 1 on
    // the ascending-sorted sample.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    ((2.0 * weighted) / (n * total) - (n + 1.0) / n).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_equal_distribution_is_zero() {
        assert_eq!(gini_coefficient(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn single_winner_approaches_one() {
        // With n participants and one holding everything, G = (n-1)/n.
        let g = gini_coefficient(&[0.0, 0.0, 0.0, 100.0]);
        assert!((g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn known_small_example() {
        // [1, 2, 3]: G = (2*(1*1 + 2*2 + 3*3)) / (3*6) - 4/3 = 28/18 - 4/3 = 2/9
        let g = gini_coefficient(&[1.0, 2.0, 3.0]);
        assert!((g - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
        assert_eq!(gini_coefficient(&[7.0]), 0.0);
        // Negative values are clamped rather than corrupting the index.
        assert_eq!(gini_coefficient(&[-1.0, -2.0]), 0.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = gini_coefficient(&[1.0, 5.0, 2.0, 9.0]);
        let b = gini_coefficient(&[9.0, 2.0, 5.0, 1.0]);
        assert!((a - b).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_gini_in_unit_interval(values in proptest::collection::vec(0.0f64..1e6, 0..100)) {
            let g = gini_coefficient(&values);
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        fn prop_uniform_distribution_is_zero(value in 0.1f64..1e6, n in 1usize..50) {
            let values = vec![value; n];
            prop_assert!(gini_coefficient(&values).abs() < 1e-9);
        }

        #[test]
        fn prop_scaling_invariant(values in proptest::collection::vec(0.0f64..1e3, 2..50), scale in 0.1f64..100.0) {
            let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
            let a = gini_coefficient(&values);
            let b = gini_coefficient(&scaled);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
