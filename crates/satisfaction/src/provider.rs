//! Provider-side satisfaction (Definition 2 of the paper).
//!
//! A provider tracks the intentions it expressed towards the last `k` queries
//! that were *proposed* to it (the vector `PPIp` of the paper). Among those,
//! the subset `SQ^k_p` is the set of queries the provider actually got to
//! perform. Its satisfaction is
//!
//! ```text
//!            |  (1/|SQ^k_p|) · Σ_{q ∈ SQ^k_p} (PPIp[q] + 1) / 2
//! δs(p)  =   |
//!            |  0                                if SQ^k_p = ∅
//! ```
//!
//! In words: a provider is satisfied when the queries it ends up performing
//! are the ones it wanted, and completely unsatisfied when it is proposed
//! queries but never selected. Note that the denominator is the number of
//! *performed* queries, not `k`: a provider that performs few but
//! well-matching queries is still satisfied — starvation is penalised through
//! the empty-set clause, not through dilution.

use serde::{Deserialize, Serialize};

use sbqa_types::{Intention, QueryId, Satisfaction};

use crate::window::InteractionWindow;

/// One proposal the provider received: the query, the intention the provider
/// expressed for performing it, and whether the mediator selected it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderInteraction {
    /// The proposed query.
    pub query: QueryId,
    /// The intention the provider expressed for performing the query
    /// (an entry of the vector `PPIp`).
    pub intention: Intention,
    /// `true` if the provider was selected to perform the query
    /// (`q ∈ SQ^k_p`).
    pub performed: bool,
}

impl ProviderInteraction {
    /// Builds a proposal record.
    #[must_use]
    pub fn new(query: QueryId, intention: Intention, performed: bool) -> Self {
        Self {
            query,
            intention,
            performed,
        }
    }
}

/// Rolling provider satisfaction over the last `k` proposed queries
/// (Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderSatisfaction {
    window: InteractionWindow<ProviderInteraction>,
}

impl ProviderSatisfaction {
    /// Creates a tracker remembering the last `k` proposals.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            window: InteractionWindow::new(k),
        }
    }

    /// The window size `k`.
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.window.capacity()
    }

    /// Number of proposals currently remembered.
    #[must_use]
    pub fn observed_proposals(&self) -> usize {
        self.window.len()
    }

    /// Records a proposal and whether the provider performed it.
    pub fn record(&mut self, interaction: ProviderInteraction) {
        self.window.record(interaction);
    }

    /// Convenience wrapper over [`ProviderSatisfaction::record`].
    pub fn record_proposal(&mut self, query: QueryId, intention: Intention, performed: bool) {
        self.record(ProviderInteraction::new(query, intention, performed));
    }

    /// Long-run satisfaction `δs(p)` over the remembered window.
    ///
    /// Follows Definition 2, with one refinement for the cold-start case: a
    /// provider that has received *no proposal at all* is treated as fully
    /// satisfied (it has not been wronged yet), whereas a provider that has
    /// been proposed queries but performed none of them gets the paper's `0`.
    #[must_use]
    pub fn satisfaction(&self) -> Satisfaction {
        if self.window.is_empty() {
            return Satisfaction::MAX;
        }
        // Single allocation-free pass: this sits on the mediation hot path
        // (SbQA reads every candidate's satisfaction to resolve ω).
        let mut sum = 0.0;
        let mut performed = 0usize;
        for interaction in self.window.iter().filter(|i| i.performed) {
            sum += interaction.intention.to_unit().value();
            performed += 1;
        }
        if performed == 0 {
            return Satisfaction::MIN;
        }
        Satisfaction::new(sum / performed as f64)
    }

    /// Number of remembered proposals the provider actually performed
    /// (`|SQ^k_p|`).
    #[must_use]
    pub fn performed_count(&self) -> usize {
        self.window.iter().filter(|i| i.performed).count()
    }

    /// Fraction of remembered proposals the provider performed. Returns 1.0
    /// when there is no proposal yet.
    #[must_use]
    pub fn selection_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 1.0;
        }
        self.performed_count() as f64 / self.window.len() as f64
    }

    /// Mean intention expressed over all remembered proposals, performed or
    /// not. This is the raw interest signal used by the adequation notion.
    #[must_use]
    pub fn mean_proposed_intention(&self) -> Intention {
        let values: Vec<Intention> = self.window.iter().map(|i| i.intention).collect();
        Intention::mean(&values)
    }

    /// Iterates over the remembered proposals, oldest first.
    pub fn interactions(&self) -> impl Iterator<Item = &ProviderInteraction> {
        self.window.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn satisfaction_matches_definition_two() {
        let mut sat = ProviderSatisfaction::new(10);
        // Performed a wanted query (intention 1) and an unwanted one (-1),
        // plus a proposal it did not perform (ignored by the numerator):
        // δs = ((1+1)/2 + (-1+1)/2) / 2 = (1 + 0) / 2 = 0.5
        sat.record_proposal(QueryId::new(1), Intention::new(1.0), true);
        sat.record_proposal(QueryId::new(2), Intention::new(-1.0), true);
        sat.record_proposal(QueryId::new(3), Intention::new(1.0), false);
        assert!((sat.satisfaction().value() - 0.5).abs() < 1e-12);
        assert_eq!(sat.performed_count(), 2);
    }

    #[test]
    fn proposed_but_never_selected_means_zero() {
        let mut sat = ProviderSatisfaction::new(5);
        sat.record_proposal(QueryId::new(1), Intention::new(0.9), false);
        sat.record_proposal(QueryId::new(2), Intention::new(0.8), false);
        assert_eq!(sat.satisfaction(), Satisfaction::MIN);
        assert_eq!(sat.selection_rate(), 0.0);
    }

    #[test]
    fn no_proposal_yet_means_fully_satisfied() {
        let sat = ProviderSatisfaction::new(5);
        assert_eq!(sat.satisfaction(), Satisfaction::MAX);
        assert_eq!(sat.selection_rate(), 1.0);
        assert_eq!(sat.mean_proposed_intention(), Intention::NEUTRAL);
    }

    #[test]
    fn denominator_is_performed_queries_not_k() {
        let mut sat = ProviderSatisfaction::new(100);
        // One performed query it loved, many proposals it did not perform:
        // satisfaction stays 1.0 because the mean is over performed queries.
        sat.record_proposal(QueryId::new(0), Intention::new(1.0), true);
        for i in 1..50 {
            sat.record_proposal(QueryId::new(i), Intention::new(0.5), false);
        }
        assert_eq!(sat.satisfaction(), Satisfaction::MAX);
        assert!((sat.selection_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn window_eviction_forgets_old_interactions() {
        let mut sat = ProviderSatisfaction::new(2);
        sat.record_proposal(QueryId::new(1), Intention::new(1.0), true);
        sat.record_proposal(QueryId::new(2), Intention::new(1.0), true);
        assert_eq!(sat.satisfaction(), Satisfaction::MAX);
        // Two bad interactions push the good ones out of the window.
        sat.record_proposal(QueryId::new(3), Intention::new(-1.0), true);
        sat.record_proposal(QueryId::new(4), Intention::new(-1.0), true);
        assert_eq!(sat.satisfaction(), Satisfaction::MIN);
        assert_eq!(sat.observed_proposals(), 2);
        assert_eq!(sat.window_size(), 2);
        assert_eq!(sat.interactions().count(), 2);
    }

    proptest! {
        #[test]
        fn prop_satisfaction_in_unit_interval(
            proposals in proptest::collection::vec((-1.0f64..=1.0, proptest::bool::ANY), 0..50),
            k in 1usize..60,
        ) {
            let mut sat = ProviderSatisfaction::new(k);
            for (i, (intent, performed)) in proposals.iter().enumerate() {
                sat.record_proposal(QueryId::new(i as u64), Intention::new(*intent), *performed);
            }
            let s = sat.satisfaction().value();
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_performing_only_loved_queries_gives_max(
            count in 1usize..30,
        ) {
            let mut sat = ProviderSatisfaction::new(64);
            for i in 0..count {
                sat.record_proposal(QueryId::new(i as u64), Intention::MAX, true);
            }
            prop_assert_eq!(sat.satisfaction(), Satisfaction::MAX);
        }

        #[test]
        fn prop_selection_rate_in_unit_interval(
            proposals in proptest::collection::vec(proptest::bool::ANY, 0..50),
        ) {
            let mut sat = ProviderSatisfaction::new(32);
            for (i, performed) in proposals.iter().enumerate() {
                sat.record_proposal(QueryId::new(i as u64), Intention::NEUTRAL, *performed);
            }
            let rate = sat.selection_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
