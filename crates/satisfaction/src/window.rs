//! Bounded windows over the last `k` interactions.
//!
//! Section II of the paper: "The satisfaction notions are based on the `k`
//! last interactions that a participant had with the system. The `k` value may
//! be different for each participant depending on its memory capacity."
//!
//! [`InteractionWindow`] is a fixed-capacity FIFO over interaction records.
//! When a new interaction arrives and the window is full, the oldest record is
//! evicted, so satisfaction always reflects the most recent `k` interactions.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize, Value};

/// A bounded FIFO window over the last `k` interactions of a participant.
///
/// `Deserialize` is implemented by hand rather than derived: the derive
/// would write whatever `capacity` the payload carries straight into the
/// field, bypassing the `k ≥ 1` promotion of [`InteractionWindow::new`] — a
/// deserialized window could then have `capacity == 0` and record
/// interactions it can never hold. The manual impl re-imposes the
/// constructor invariants (capacity at least one, at most `capacity` items,
/// keeping the newest).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InteractionWindow<T> {
    capacity: usize,
    items: VecDeque<T>,
    /// Total number of interactions ever recorded, including evicted ones.
    total_recorded: u64,
}

impl<T: Deserialize> Deserialize for InteractionWindow<T> {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map"))?;
        let capacity = usize::from_value(serde::__find(entries, "capacity")?)?.max(1);
        let mut items = VecDeque::<T>::from_value(serde::__find(entries, "items")?)?;
        let total_recorded = u64::from_value(serde::__find(entries, "total_recorded")?)?;
        // An over-full payload keeps the newest `capacity` interactions,
        // mirroring `resize`'s shrink-from-the-oldest-side behaviour.
        while items.len() > capacity {
            items.pop_front();
        }
        Ok(Self {
            capacity,
            items,
            total_recorded,
        })
    }
}

impl<T> InteractionWindow<T> {
    /// Creates a window remembering at most `k` interactions.
    ///
    /// A capacity of zero is promoted to one: a participant that remembers
    /// nothing cannot compute a satisfaction at all, and the paper assumes
    /// `k ≥ 1`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            capacity: k.max(1),
            items: VecDeque::with_capacity(k.max(1)),
            total_recorded: 0,
        }
    }

    /// The window capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of interactions currently remembered (≤ `k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no interaction has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` once the window holds exactly `k` interactions.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Total number of interactions ever recorded (monotonically increasing).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Removes and returns the oldest interaction if the window is full.
    ///
    /// This is the eviction half of [`InteractionWindow::record`], split out
    /// so callers can recycle the evicted record's buffers when building the
    /// next one (the registry's zero-allocation steady-state path). It does
    /// not count as a recorded interaction.
    pub fn take_oldest_if_full(&mut self) -> Option<T> {
        if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        }
    }

    /// Records a new interaction, evicting the oldest one if the window is
    /// full. Returns the evicted interaction, if any.
    pub fn record(&mut self, item: T) -> Option<T> {
        self.total_recorded += 1;
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Iterates over the remembered interactions from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The most recent interaction, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&T> {
        self.items.back()
    }

    /// The oldest remembered interaction, if any.
    #[must_use]
    pub fn oldest(&self) -> Option<&T> {
        self.items.front()
    }

    /// Forgets all remembered interactions (but keeps the total counter).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Changes the window capacity.
    ///
    /// Shrinking evicts the oldest interactions so that only the newest
    /// `new_k` remain; growing never discards anything.
    pub fn resize(&mut self, new_k: usize) {
        let new_k = new_k.max(1);
        while self.items.len() > new_k {
            self.items.pop_front();
        }
        self.capacity = new_k;
    }
}

impl<T> Extend<T> for InteractionWindow<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.record(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_capacity_is_promoted_to_one() {
        let w: InteractionWindow<u32> = InteractionWindow::new(0);
        assert_eq!(w.capacity(), 1);
    }

    #[test]
    fn record_evicts_oldest_when_full() {
        let mut w = InteractionWindow::new(3);
        assert_eq!(w.record(1), None);
        assert_eq!(w.record(2), None);
        assert_eq!(w.record(3), None);
        assert!(w.is_full());
        assert_eq!(w.record(4), Some(1));
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(w.oldest(), Some(&2));
        assert_eq!(w.latest(), Some(&4));
        assert_eq!(w.total_recorded(), 4);
    }

    #[test]
    fn deserialization_enforces_the_capacity_invariant() {
        // A normal window round-trips unchanged.
        let mut w = InteractionWindow::new(3);
        w.extend([1u32, 2, 3, 4]);
        let back: InteractionWindow<u32> = serde::from_str(&serde::to_string(&w)).unwrap();
        assert_eq!(back, w);

        // A payload claiming capacity 0 (which `new` can never produce) is
        // promoted to 1 on the way in, keeping only the newest item — the
        // window can hold what it records.
        let mut value = w.to_value();
        if let Value::Map(entries) = &mut value {
            for (key, slot) in entries.iter_mut() {
                if matches!(key, Value::String(s) if s == "capacity") {
                    *slot = 0usize.to_value();
                }
            }
        } else {
            panic!("windows serialize as maps");
        }
        let patched: InteractionWindow<u32> = InteractionWindow::from_value(&value).unwrap();
        assert_eq!(patched.capacity(), 1);
        assert_eq!(patched.len(), 1);
        assert_eq!(patched.latest(), Some(&4));
        assert!(patched.is_full());
        // Recording still works and evicts rather than overflowing.
        let mut patched = patched;
        assert_eq!(patched.record(9), Some(4));
        assert_eq!(patched.len(), 1);

        // Non-map payloads are rejected, not misread.
        assert!(InteractionWindow::<u32>::from_value(&Value::Unit).is_err());
    }

    #[test]
    fn clear_keeps_total_counter() {
        let mut w = InteractionWindow::new(2);
        w.record("a");
        w.record("b");
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.total_recorded(), 2);
    }

    #[test]
    fn resize_shrinks_from_the_oldest_side() {
        let mut w = InteractionWindow::new(5);
        w.extend([1, 2, 3, 4, 5]);
        w.resize(2);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(w.capacity(), 2);
        // Growing keeps everything.
        w.resize(10);
        assert_eq!(w.len(), 2);
        assert_eq!(w.capacity(), 10);
        // Resize to zero is promoted to one.
        w.resize(0);
        assert_eq!(w.capacity(), 1);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![5]);
    }

    proptest! {
        #[test]
        fn prop_never_exceeds_capacity(k in 1usize..20, items in proptest::collection::vec(0u32..100, 0..100)) {
            let mut w = InteractionWindow::new(k);
            for item in &items {
                w.record(*item);
            }
            prop_assert!(w.len() <= k);
            prop_assert_eq!(w.total_recorded(), items.len() as u64);
        }

        #[test]
        fn prop_keeps_most_recent_items(k in 1usize..20, items in proptest::collection::vec(0u32..100, 1..100)) {
            let mut w = InteractionWindow::new(k);
            for item in &items {
                w.record(*item);
            }
            let expected: Vec<u32> = items.iter().rev().take(k).rev().copied().collect();
            prop_assert_eq!(w.iter().copied().collect::<Vec<_>>(), expected);
        }
    }
}
