//! A cheap, windowed signal of the consumer/provider satisfaction gap.
//!
//! The paper's self-adaptation pitch is that the mediator should *observe*
//! how far apart the two sides' satisfaction drifts and react — Equation 2
//! already does this per pair for ω, and the adaptive-`kn` controller
//! (`sbqa_core::adaptive`) does it per capability class for the exploration
//! width. Both need the same input: a per-mediation **gap sample**, cheap
//! enough for the zero-allocation hot path.
//!
//! [`GapSample`] is that input: the satisfaction of the issuing consumer and
//! the mean satisfaction of the consulted providers (the set `Kn`), read at
//! mediation time. SbQA's allocator already fetches both values to resolve ω
//! (Equation 2), so producing a sample costs one addition per consulted
//! provider and one division — no extra registry reads.
//!
//! [`GapWindow`] smooths the samples: a fixed-capacity ring with running
//! sums, so recording is O(1), the windowed means are O(1) reads, and the
//! window never allocates after construction. The window is deliberately a
//! pure function of the sample stream — no clocks, no randomness — which is
//! what lets controllers built on it keep golden outputs byte-stable.

use serde::{Deserialize, Serialize};

use sbqa_types::{Intention, ProviderId, Satisfaction};

/// One mediation's view of both sides' satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapSample {
    /// Satisfaction of the issuing consumer, in `[0, 1]`.
    pub consumer: f64,
    /// Mean satisfaction of the consulted providers (the set `Kn`),
    /// in `[0, 1]`.
    pub provider: f64,
}

impl GapSample {
    /// Builds a sample from the two sides' satisfaction values, clamping
    /// non-finite inputs to the neutral `0.5`.
    #[must_use]
    pub fn new(consumer: f64, provider: f64) -> Self {
        let sane = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.5
            }
        };
        Self {
            consumer: sane(consumer),
            provider: sane(provider),
        }
    }

    /// Builds a sample from registry satisfaction values.
    #[must_use]
    pub fn from_satisfactions(consumer: Satisfaction, provider: Satisfaction) -> Self {
        Self::new(consumer.value(), provider.value())
    }

    /// Builds the instantaneous per-mediation sample from pre-accumulated
    /// unit-interval gains: `consumer_gain` is the sum of `(CIq[p] + 1) / 2`
    /// over the *selected* providers (normalised by `q.n` per Definition 1 —
    /// missing results count as zero), `provider_gain` the sum of
    /// `(PIq[p] + 1) / 2` over the selected providers (normalised by the
    /// number of *consulted* providers: every rejected proposal contributes
    /// a zero, the per-proposal Definition-2 reading).
    ///
    /// This is the single normalisation every instantaneous-sample producer
    /// goes through — [`GapSample::from_views`] and SbQA's allocator both
    /// delegate here, so the two cannot drift. A mediation that consulted
    /// nobody reports the neutral `0.5` on the provider side.
    #[must_use]
    pub fn from_sums(
        consumer_gain: f64,
        required_results: usize,
        provider_gain: f64,
        consulted: usize,
    ) -> Self {
        let consumer = consumer_gain / required_results.max(1) as f64;
        let provider = if consulted == 0 {
            0.5
        } else {
            provider_gain / consulted as f64
        };
        Self::new(consumer, provider)
    }

    /// Builds the *instantaneous* sample of one mediation from the decision
    /// views the mediator already computes for [`record_mediation`]: the
    /// consumer side is the per-query satisfaction `δs(c, q)` of Definition 1
    /// (missing results count as zero), the provider side the mean
    /// per-proposal value of Definition 2 (`(PIq[p]+1)/2` if performed, `0`
    /// otherwise) over the consulted set.
    ///
    /// This variant needs no registry at all, which makes it usable by
    /// allocation techniques that do not track satisfaction.
    ///
    /// [`record_mediation`]: crate::SatisfactionRegistry::record_mediation
    #[must_use]
    pub fn from_views(
        required_results: usize,
        performed_by: &[(ProviderId, Intention)],
        proposals: &[(ProviderId, Intention, bool)],
    ) -> Self {
        let consumer_gain: f64 = performed_by
            .iter()
            .map(|(_, intention)| intention.to_unit().value())
            .sum();
        let provider_gain: f64 = proposals
            .iter()
            .filter(|(_, _, performed)| *performed)
            .map(|(_, intention, _)| intention.to_unit().value())
            .sum();
        Self::from_sums(
            consumer_gain,
            required_results,
            provider_gain,
            proposals.len(),
        )
    }

    /// The signed gap `consumer − provider`: positive when consumers are the
    /// better-served side, negative when providers are.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.consumer - self.provider
    }
}

/// A fixed-capacity sliding window of [`GapSample`]s with O(1) means.
///
/// The ring keeps the last `capacity` samples and maintains running sums of
/// both sides, so recording evicts-and-adds in constant time and the means
/// are single divisions. All state is a pure function of the recorded
/// sample stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapWindow {
    samples: Vec<GapSample>,
    /// Position the next sample overwrites once the ring is full.
    head: usize,
    capacity: usize,
    consumer_sum: f64,
    provider_sum: f64,
}

impl GapWindow {
    /// Creates a window remembering the last `capacity` samples (raised to 1
    /// if 0). The ring buffer is allocated up front so recording never
    /// allocates.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            samples: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            consumer_sum: 0.0,
            provider_sum: 0.0,
        }
    }

    /// The configured window length.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no sample has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records a sample, evicting the oldest one once the window is full.
    pub fn record(&mut self, sample: GapSample) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            let evicted = std::mem::replace(&mut self.samples[self.head], sample);
            self.head = (self.head + 1) % self.capacity;
            self.consumer_sum -= evicted.consumer;
            self.provider_sum -= evicted.provider;
        }
        self.consumer_sum += sample.consumer;
        self.provider_sum += sample.provider;
    }

    /// Windowed mean of the consumer side, or 0.5 (neutral) if empty.
    #[must_use]
    pub fn consumer_mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.5;
        }
        (self.consumer_sum / self.samples.len() as f64).clamp(0.0, 1.0)
    }

    /// Windowed mean of the provider side, or 0.5 (neutral) if empty.
    #[must_use]
    pub fn provider_mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.5;
        }
        (self.provider_sum / self.samples.len() as f64).clamp(0.0, 1.0)
    }

    /// Windowed mean of the signed gap `consumer − provider`; 0 if empty.
    #[must_use]
    pub fn gap(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.consumer_mean() - self.provider_mean()
    }

    /// Empties the window (running sums are reset exactly, so long-lived
    /// windows shed any accumulated floating-point drift at each clear).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.head = 0;
        self.consumer_sum = 0.0;
        self.provider_sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::QueryId;

    fn pid(raw: u64) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn sample_gap_is_signed() {
        let sample = GapSample::new(0.9, 0.4);
        assert!((sample.gap() - 0.5).abs() < 1e-12);
        let sample = GapSample::new(0.2, 0.8);
        assert!((sample.gap() + 0.6).abs() < 1e-12);
    }

    #[test]
    fn sample_sanitises_degenerate_inputs() {
        let sample = GapSample::new(f64::NAN, 7.0);
        assert_eq!(sample.consumer, 0.5);
        assert_eq!(sample.provider, 1.0);
        let sample = GapSample::new(-3.0, f64::INFINITY);
        assert_eq!(sample.consumer, 0.0);
        assert_eq!(sample.provider, 0.5);
    }

    #[test]
    fn from_satisfactions_reads_registry_values() {
        let sample =
            GapSample::from_satisfactions(Satisfaction::new(0.75), Satisfaction::new(0.25));
        assert!((sample.gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_views_matches_the_satisfaction_definitions() {
        // Consumer required 2 results, got providers with intentions 1 and 0:
        // δs(c, q) = ((1+1)/2 + (0+1)/2) / 2 = 0.75 — the Definition 1 value.
        let performed = vec![(pid(1), Intention::new(1.0)), (pid(2), Intention::new(0.0))];
        // Three proposals, two performed (intentions 1 and 0), one rejected:
        // mean over proposals = ((1+1)/2 + (0+1)/2 + 0) / 3 = 0.5.
        let proposals = vec![
            (pid(1), Intention::new(1.0), true),
            (pid(2), Intention::new(0.0), true),
            (pid(3), Intention::new(0.9), false),
        ];
        let sample = GapSample::from_views(2, &performed, &proposals);
        assert!((sample.consumer - 0.75).abs() < 1e-12);
        assert!((sample.provider - 0.5).abs() < 1e-12);

        // The consumer-interaction equivalence: the same numbers Definition 1
        // produces through the registry path.
        let interaction = crate::ConsumerInteraction::new(QueryId::new(1), 2, performed);
        assert!((interaction.satisfaction().value() - sample.consumer).abs() < 1e-12);
    }

    #[test]
    fn from_sums_is_the_shared_normalisation() {
        // (1 + 0.5) consumer gain over q.n = 2, (1 + 0.5) provider gain over
        // 3 consulted — the same figures the from_views test derives.
        let sample = GapSample::from_sums(1.5, 2, 1.5, 3);
        assert!((sample.consumer - 0.75).abs() < 1e-12);
        assert!((sample.provider - 0.5).abs() < 1e-12);
        // Nobody consulted: the provider side is neutral, and a zero q.n
        // behaves like 1.
        let sample = GapSample::from_sums(0.9, 0, 0.0, 0);
        assert!((sample.consumer - 0.9).abs() < 1e-12);
        assert_eq!(sample.provider, 0.5);
    }

    #[test]
    fn from_views_handles_starvation_and_zero_divisors() {
        // A starved query: nobody performed, nobody proposed.
        let sample = GapSample::from_views(0, &[], &[]);
        assert_eq!(sample.consumer, 0.0);
        assert_eq!(sample.provider, 0.5);
    }

    #[test]
    fn window_slides_and_keeps_exact_means() {
        let mut window = GapWindow::new(2);
        assert!(window.is_empty());
        assert_eq!(window.gap(), 0.0);
        assert_eq!(window.consumer_mean(), 0.5);

        window.record(GapSample::new(1.0, 0.0));
        assert_eq!(window.len(), 1);
        assert!((window.gap() - 1.0).abs() < 1e-12);

        window.record(GapSample::new(0.5, 0.5));
        assert!((window.consumer_mean() - 0.75).abs() < 1e-12);
        assert!((window.provider_mean() - 0.25).abs() < 1e-12);

        // Third sample evicts the first: means cover (0.5, 0.5), (0.0, 1.0).
        window.record(GapSample::new(0.0, 1.0));
        assert_eq!(window.len(), 2);
        assert!((window.consumer_mean() - 0.25).abs() < 1e-12);
        assert!((window.provider_mean() - 0.75).abs() < 1e-12);
        assert!((window.gap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_eviction_cycles_past_capacity() {
        let mut window = GapWindow::new(3);
        for i in 0..10 {
            let v = f64::from(i) / 10.0;
            window.record(GapSample::new(v, 0.0));
        }
        // Survivors are the last three: 0.7, 0.8, 0.9.
        assert_eq!(window.len(), 3);
        assert!((window.consumer_mean() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn window_capacity_is_sanitised_and_clear_resets() {
        let mut window = GapWindow::new(0);
        assert_eq!(window.capacity(), 1);
        window.record(GapSample::new(0.9, 0.1));
        window.record(GapSample::new(0.1, 0.9));
        assert_eq!(window.len(), 1);
        assert!((window.gap() + 0.8).abs() < 1e-12);
        window.clear();
        assert!(window.is_empty());
        assert_eq!(window.gap(), 0.0);
    }

    #[test]
    fn recording_never_allocates_after_construction() {
        let mut window = GapWindow::new(8);
        let base_capacity = window.samples.capacity();
        for i in 0..1000 {
            window.record(GapSample::new((i % 10) as f64 / 10.0, 0.3));
        }
        assert_eq!(window.samples.capacity(), base_capacity);
    }
}
