//! # sbqa-satisfaction
//!
//! The long-run satisfaction model of SbQA (Section II of the paper, in turn
//! taken from the SQLB framework, VLDB 2007).
//!
//! Participants — consumers and providers — are autonomous: they have private
//! interests in queries and may leave a system that keeps ignoring those
//! interests. The satisfaction model turns the history of a participant's
//! *expressed intentions* over its last `k` interactions into a single number
//! in `[0, 1]`:
//!
//! * **consumer satisfaction** ([`ConsumerSatisfaction`]): for each of the
//!   last `k` queries, how much the consumer wanted the providers that
//!   actually performed it (Definition 1);
//! * **provider satisfaction** ([`ProviderSatisfaction`]): over the last `k`
//!   queries *proposed* to the provider, how much it wanted the ones it
//!   actually got to perform (Definition 2);
//! * **adequation and allocation efficiency** ([`adequation`]): how well the
//!   system's proposals match a participant's interests irrespective of the
//!   final allocation, and which fraction of the attainable satisfaction the
//!   mediator actually delivered (reconstructed from the SQLB paper, see the
//!   module documentation).
//!
//! The mediator keeps its own mirror of everybody's satisfaction in a
//! [`SatisfactionRegistry`], which is what the ω computation of Equation 2
//! reads. The [`gap`] module distils the registry's two sides into a cheap
//! windowed **satisfaction-gap signal** ([`GapSample`] / [`GapWindow`]) that
//! self-adapting components — the adaptive-`kn` controller in `sbqa_core` —
//! consume on the hot path without extra registry scans.

#![forbid(unsafe_code)]

pub mod adequation;
pub mod analysis;
pub mod consumer;
pub mod gap;
pub mod provider;
pub mod registry;
pub mod window;

pub use adequation::{AllocationEfficiency, ConsumerAdequation, ProviderAdequation};
pub use analysis::{SatisfactionAnalysis, SatisfactionSnapshot, SideSummary};
pub use consumer::{ConsumerInteraction, ConsumerSatisfaction};
pub use gap::{GapSample, GapWindow};
pub use provider::{ProviderInteraction, ProviderSatisfaction};
pub use registry::SatisfactionRegistry;
pub use window::InteractionWindow;
