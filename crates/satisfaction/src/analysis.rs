//! Cross-technique satisfaction analysis.
//!
//! Scenario 1 of the paper demonstrates that "the proposed satisfaction model
//! allows analyzing different query allocation techniques no matter their
//! query allocation principle". This module provides the apparatus for that
//! claim: a [`SatisfactionSnapshot`] summarising both sides of a
//! [`SatisfactionRegistry`] at a point in (virtual) time, and a
//! [`SatisfactionAnalysis`] that accumulates snapshots for a given allocation
//! technique so they can be compared side by side.

use serde::{Deserialize, Serialize};

use sbqa_types::{Satisfaction, VirtualTime};

use crate::registry::SatisfactionRegistry;

/// Aggregate satisfaction statistics for one side (consumers or providers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SideSummary {
    /// Number of participants on this side.
    pub count: usize,
    /// Mean satisfaction across participants.
    pub mean: f64,
    /// Lowest satisfaction across participants.
    pub min: f64,
    /// Highest satisfaction across participants.
    pub max: f64,
    /// Standard deviation of satisfaction across participants.
    pub std_dev: f64,
    /// Fraction of participants whose satisfaction is below the given
    /// departure threshold (0.35 for providers and 0.5 for consumers in the
    /// paper's autonomous scenarios).
    pub fraction_below_threshold: f64,
}

impl SideSummary {
    /// Builds a summary from raw satisfaction values.
    #[must_use]
    pub fn from_values(values: &[Satisfaction], departure_threshold: f64) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                std_dev: 0.0,
                fraction_below_threshold: 0.0,
            };
        }
        let n = values.len() as f64;
        let raw: Vec<f64> = values.iter().map(|s| s.value()).collect();
        let mean = raw.iter().sum::<f64>() / n;
        let min = raw.iter().copied().fold(f64::INFINITY, f64::min);
        let max = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let variance = raw.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let below = raw.iter().filter(|v| **v < departure_threshold).count() as f64;
        Self {
            count: values.len(),
            mean,
            min,
            max,
            std_dev: variance.sqrt(),
            fraction_below_threshold: below / n,
        }
    }
}

/// A point-in-time summary of every participant's satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionSnapshot {
    /// Virtual time at which the snapshot was taken.
    pub at: VirtualTime,
    /// Consumer-side aggregate.
    pub consumers: SideSummary,
    /// Provider-side aggregate.
    pub providers: SideSummary,
}

impl SatisfactionSnapshot {
    /// Takes a snapshot of a registry.
    ///
    /// `consumer_threshold` and `provider_threshold` are the departure
    /// thresholds used to compute the at-risk fractions (the paper's Scenario
    /// 2 uses 0.5 and 0.35).
    #[must_use]
    pub fn capture(
        registry: &SatisfactionRegistry,
        at: VirtualTime,
        consumer_threshold: f64,
        provider_threshold: f64,
    ) -> Self {
        // Order the values by participant id before aggregating: the
        // registry iterates hash maps, and float summation in hasher order
        // would make the aggregate means differ in their last bits between
        // identically-seeded runs.
        let mut consumers: Vec<(sbqa_types::ConsumerId, Satisfaction)> =
            registry.consumer_satisfactions().collect();
        consumers.sort_unstable_by_key(|(id, _)| *id);
        let consumer_values: Vec<Satisfaction> = consumers.into_iter().map(|(_, s)| s).collect();
        let mut providers: Vec<(sbqa_types::ProviderId, Satisfaction)> =
            registry.provider_satisfactions().collect();
        providers.sort_unstable_by_key(|(id, _)| *id);
        let provider_values: Vec<Satisfaction> = providers.into_iter().map(|(_, s)| s).collect();
        Self {
            at,
            consumers: SideSummary::from_values(&consumer_values, consumer_threshold),
            providers: SideSummary::from_values(&provider_values, provider_threshold),
        }
    }

    /// Absolute gap between the two sides' mean satisfaction — the fairness
    /// indicator SbQA's adaptive ω is designed to keep small.
    #[must_use]
    pub fn side_gap(&self) -> f64 {
        (self.consumers.mean - self.providers.mean).abs()
    }
}

/// A labelled time series of snapshots for one allocation technique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionAnalysis {
    /// Label of the allocation technique being analysed.
    pub technique: String,
    /// Snapshots in chronological order.
    pub snapshots: Vec<SatisfactionSnapshot>,
}

impl SatisfactionAnalysis {
    /// Creates an empty analysis for a technique.
    #[must_use]
    pub fn new(technique: impl Into<String>) -> Self {
        Self {
            technique: technique.into(),
            snapshots: Vec::new(),
        }
    }

    /// Appends a snapshot.
    pub fn push(&mut self, snapshot: SatisfactionSnapshot) {
        self.snapshots.push(snapshot);
    }

    /// The most recent snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&SatisfactionSnapshot> {
        self.snapshots.last()
    }

    /// Mean consumer satisfaction over the whole run (time-unweighted).
    #[must_use]
    pub fn mean_consumer_satisfaction(&self) -> f64 {
        Self::mean(self.snapshots.iter().map(|s| s.consumers.mean))
    }

    /// Mean provider satisfaction over the whole run (time-unweighted).
    #[must_use]
    pub fn mean_provider_satisfaction(&self) -> f64 {
        Self::mean(self.snapshots.iter().map(|s| s.providers.mean))
    }

    /// Mean gap between the two sides over the run — lower is fairer.
    #[must_use]
    pub fn mean_side_gap(&self) -> f64 {
        Self::mean(self.snapshots.iter().map(SatisfactionSnapshot::side_gap))
    }

    fn mean(values: impl Iterator<Item = f64>) -> f64 {
        let collected: Vec<f64> = values.collect();
        if collected.is_empty() {
            return 0.0;
        }
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{ConsumerId, Intention, ProviderId, QueryId};

    #[test]
    fn side_summary_statistics() {
        let values = vec![
            Satisfaction::new(0.2),
            Satisfaction::new(0.4),
            Satisfaction::new(0.9),
        ];
        let summary = SideSummary::from_values(&values, 0.35);
        assert_eq!(summary.count, 3);
        assert!((summary.mean - 0.5).abs() < 1e-12);
        assert!((summary.min - 0.2).abs() < 1e-12);
        assert!((summary.max - 0.9).abs() < 1e-12);
        assert!(summary.std_dev > 0.0);
        assert!((summary.fraction_below_threshold - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_side_summary_is_all_zeroes() {
        let summary = SideSummary::from_values(&[], 0.5);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mean, 0.0);
        assert_eq!(summary.fraction_below_threshold, 0.0);
    }

    #[test]
    fn snapshot_captures_registry_state() {
        let mut registry = SatisfactionRegistry::new(10);
        registry.record_mediation(
            QueryId::new(1),
            ConsumerId::new(1),
            1,
            &[(ProviderId::new(1), Intention::new(1.0))],
            &[
                (ProviderId::new(1), Intention::new(1.0), true),
                (ProviderId::new(2), Intention::new(0.5), false),
            ],
        );
        let snap = SatisfactionSnapshot::capture(&registry, VirtualTime::new(10.0), 0.5, 0.35);
        assert_eq!(snap.consumers.count, 1);
        assert_eq!(snap.providers.count, 2);
        assert!((snap.consumers.mean - 1.0).abs() < 1e-12);
        // Provider means: 1.0 (performed a loved query) and 0.0 (ignored).
        assert!((snap.providers.mean - 0.5).abs() < 1e-12);
        assert!((snap.providers.fraction_below_threshold - 0.5).abs() < 1e-12);
        assert!((snap.side_gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn analysis_aggregates_over_time() {
        let mut analysis = SatisfactionAnalysis::new("Capacity");
        assert_eq!(analysis.mean_consumer_satisfaction(), 0.0);
        assert!(analysis.latest().is_none());

        for (t, c, p) in [(1.0, 0.8, 0.2), (2.0, 0.6, 0.4)] {
            analysis.push(SatisfactionSnapshot {
                at: VirtualTime::new(t),
                consumers: SideSummary {
                    count: 3,
                    mean: c,
                    min: c,
                    max: c,
                    std_dev: 0.0,
                    fraction_below_threshold: 0.0,
                },
                providers: SideSummary {
                    count: 5,
                    mean: p,
                    min: p,
                    max: p,
                    std_dev: 0.0,
                    fraction_below_threshold: 0.0,
                },
            });
        }
        assert!((analysis.mean_consumer_satisfaction() - 0.7).abs() < 1e-12);
        assert!((analysis.mean_provider_satisfaction() - 0.3).abs() < 1e-12);
        assert!((analysis.mean_side_gap() - 0.4).abs() < 1e-12);
        assert_eq!(analysis.latest().unwrap().at, VirtualTime::new(2.0));
        assert_eq!(analysis.technique, "Capacity");
    }
}
