//! Consumer-side satisfaction (Definition 1 of the paper).
//!
//! For a query `q` issued by consumer `c`, the consumer expressed an intention
//! `CIq[p] ∈ [-1, 1]` towards every provider `p` in `Pq`. Once the query has
//! been performed by the set `P̂q` of providers, the per-query satisfaction is
//!
//! ```text
//! δs(c, q) = (1/n) · Σ_{p ∈ P̂q} (CIq[p] + 1) / 2
//! ```
//!
//! where `n` is the number of results the consumer required (`q.n`). Note the
//! normalisation by `n`, not by `|P̂q|`: if fewer providers than requested
//! performed the query, the missing results contribute zero satisfaction —
//! an under-served consumer is an unsatisfied consumer.
//!
//! The long-run satisfaction `δs(c)` (Definition 1) is the mean of `δs(c, q)`
//! over the consumer's last `k` queries.

use serde::{Deserialize, Serialize};

use sbqa_types::{Intention, ProviderId, QueryId, Satisfaction};

use crate::window::InteractionWindow;

/// The record a consumer keeps for one of its past queries: which providers
/// performed it, with which expressed intention, and how many results were
/// required.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerInteraction {
    /// The query this interaction refers to.
    pub query: QueryId,
    /// Number of results the consumer required (`q.n`, at least 1).
    pub required_results: usize,
    /// The providers that performed the query together with the intention the
    /// consumer had expressed towards each of them.
    pub performed_by: Vec<(ProviderId, Intention)>,
}

impl ConsumerInteraction {
    /// Builds an interaction record, forcing `required_results ≥ 1`.
    #[must_use]
    pub fn new(
        query: QueryId,
        required_results: usize,
        performed_by: Vec<(ProviderId, Intention)>,
    ) -> Self {
        Self {
            query,
            required_results: required_results.max(1),
            performed_by,
        }
    }

    /// Per-query satisfaction `δs(c, q)` (Equation 1).
    ///
    /// The divisor is clamped to at least one even though
    /// [`ConsumerInteraction::new`] already enforces `required_results ≥ 1`:
    /// the fields are public and the record derives `Deserialize`, so a
    /// record with `required_results == 0` can still be materialised. An
    /// unguarded division would then yield `0/0 = NaN` or `sum/0 = ∞` —
    /// which the [`Satisfaction`] clamp masks as *minimum* or *maximum*
    /// satisfaction respectively, silently skewing every window mean
    /// downstream instead of failing loudly.
    #[must_use]
    pub fn satisfaction(&self) -> Satisfaction {
        let n = self.required_results.max(1) as f64;
        let sum: f64 = self
            .performed_by
            .iter()
            .map(|(_, intention)| intention.to_unit().value())
            .sum();
        Satisfaction::new(sum / n)
    }

    /// `true` if the consumer obtained at least as many results as required.
    #[must_use]
    pub fn fully_served(&self) -> bool {
        self.performed_by.len() >= self.required_results
    }
}

/// Rolling consumer satisfaction over the last `k` queries (Definition 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerSatisfaction {
    window: InteractionWindow<ConsumerInteraction>,
}

impl ConsumerSatisfaction {
    /// Creates a tracker remembering the last `k` queries.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            window: InteractionWindow::new(k),
        }
    }

    /// The window size `k`.
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.window.capacity()
    }

    /// Number of queries currently contributing to the satisfaction.
    #[must_use]
    pub fn observed_queries(&self) -> usize {
        self.window.len()
    }

    /// Records the outcome of a query.
    pub fn record(&mut self, interaction: ConsumerInteraction) {
        self.window.record(interaction);
    }

    /// Convenience wrapper over [`ConsumerSatisfaction::record`] that copies
    /// the performed-by pairs out of a slice.
    ///
    /// When the window is full — the steady state — the evicted
    /// interaction's buffer is recycled for the new record, so recording
    /// allocates nothing once the buffer has grown to the typical
    /// replication factor.
    pub fn record_outcome(
        &mut self,
        query: QueryId,
        required_results: usize,
        performed_by: &[(ProviderId, Intention)],
    ) {
        let mut storage = self
            .window
            .take_oldest_if_full()
            .map(|evicted| evicted.performed_by)
            .unwrap_or_default();
        storage.clear();
        storage.extend_from_slice(performed_by);
        self.record(ConsumerInteraction::new(query, required_results, storage));
    }

    /// Long-run satisfaction `δs(c)`: the mean of the per-query satisfactions
    /// over the remembered window.
    ///
    /// A consumer with no recorded query yet is fully satisfied
    /// ([`Satisfaction::MAX`]) — it has not been wronged by the system yet,
    /// which matches the paper's treatment of newcomers and prevents
    /// spurious departures at simulation start.
    #[must_use]
    pub fn satisfaction(&self) -> Satisfaction {
        if self.window.is_empty() {
            return Satisfaction::MAX;
        }
        let sum: f64 = self
            .window
            .iter()
            .map(|interaction| interaction.satisfaction().value())
            .sum();
        Satisfaction::new(sum / self.window.len() as f64)
    }

    /// Satisfaction of the most recent query, if any.
    #[must_use]
    pub fn latest_query_satisfaction(&self) -> Option<Satisfaction> {
        self.window.latest().map(ConsumerInteraction::satisfaction)
    }

    /// Fraction of remembered queries that received all required results.
    #[must_use]
    pub fn full_service_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 1.0;
        }
        let served = self
            .window
            .iter()
            .filter(|interaction| interaction.fully_served())
            .count();
        served as f64 / self.window.len() as f64
    }

    /// Iterates over the remembered interactions, oldest first.
    pub fn interactions(&self) -> impl Iterator<Item = &ConsumerInteraction> {
        self.window.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pid(raw: u64) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn per_query_satisfaction_matches_equation_one() {
        // Two results required, two providers performed with intentions 1 and 0:
        // δs = (1/2) * ((1+1)/2 + (0+1)/2) = (1/2) * (1 + 0.5) = 0.75
        let interaction = ConsumerInteraction::new(
            QueryId::new(1),
            2,
            vec![(pid(1), Intention::new(1.0)), (pid(2), Intention::new(0.0))],
        );
        assert!((interaction.satisfaction().value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn under_served_queries_lose_satisfaction() {
        // Three results required but only one provider (intention 1) performed:
        // δs = (1/3) * 1 = 0.333…
        let interaction =
            ConsumerInteraction::new(QueryId::new(1), 3, vec![(pid(1), Intention::new(1.0))]);
        assert!((interaction.satisfaction().value() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!interaction.fully_served());
    }

    #[test]
    fn starved_query_gives_zero_satisfaction() {
        let interaction = ConsumerInteraction::new(QueryId::new(1), 2, vec![]);
        assert_eq!(interaction.satisfaction(), Satisfaction::MIN);
    }

    #[test]
    fn negative_intentions_drag_satisfaction_below_half() {
        let interaction =
            ConsumerInteraction::new(QueryId::new(1), 1, vec![(pid(1), Intention::new(-1.0))]);
        assert_eq!(interaction.satisfaction(), Satisfaction::MIN);

        let interaction =
            ConsumerInteraction::new(QueryId::new(1), 1, vec![(pid(1), Intention::new(-0.5))]);
        assert!((interaction.satisfaction().value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_required_results_cannot_skew_satisfaction() {
        // `new` clamps, but the public fields and the serde path can still
        // materialise a zero divisor; the satisfaction must stay finite and
        // behave as if one result had been required.
        let degenerate = ConsumerInteraction {
            query: QueryId::new(1),
            required_results: 0,
            performed_by: vec![(pid(1), Intention::new(1.0))],
        };
        let s = degenerate.satisfaction().value();
        assert!(s.is_finite());
        assert!((s - 1.0).abs() < 1e-12, "behaves like required_results = 1");

        let starved = ConsumerInteraction {
            query: QueryId::new(2),
            required_results: 0,
            performed_by: vec![],
        };
        assert_eq!(starved.satisfaction(), Satisfaction::MIN);

        // A degenerate record inside a window leaves the mean well-defined.
        let mut sat = ConsumerSatisfaction::new(4);
        sat.record(degenerate);
        sat.record_outcome(QueryId::new(3), 1, &[(pid(2), Intention::new(0.0))]);
        let mean = sat.satisfaction().value();
        assert!(mean.is_finite());
        assert!(
            (mean - 0.75).abs() < 1e-12,
            "mean over (1.0, 0.5), got {mean}"
        );

        // The serde round-trip preserves the zero and still cannot skew.
        let text = serde::to_string(&ConsumerInteraction {
            query: QueryId::new(4),
            required_results: 0,
            performed_by: vec![(pid(3), Intention::new(1.0))],
        });
        let back: ConsumerInteraction = serde::from_str(&text).unwrap();
        assert_eq!(back.required_results, 0);
        assert!((back.satisfaction().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_satisfaction_is_mean_over_window() {
        let mut sat = ConsumerSatisfaction::new(2);
        assert_eq!(sat.satisfaction(), Satisfaction::MAX);

        sat.record_outcome(QueryId::new(1), 1, &[(pid(1), Intention::new(1.0))]);
        sat.record_outcome(QueryId::new(2), 1, &[(pid(2), Intention::new(-1.0))]);
        // (1.0 + 0.0) / 2
        assert!((sat.satisfaction().value() - 0.5).abs() < 1e-12);

        // Window of 2: the oldest (fully satisfying) query is evicted.
        sat.record_outcome(QueryId::new(3), 1, &[(pid(3), Intention::new(-1.0))]);
        assert_eq!(sat.satisfaction(), Satisfaction::MIN);
        assert_eq!(sat.observed_queries(), 2);
        assert_eq!(sat.window_size(), 2);
    }

    #[test]
    fn latest_and_service_rate() {
        let mut sat = ConsumerSatisfaction::new(10);
        assert_eq!(sat.latest_query_satisfaction(), None);
        assert_eq!(sat.full_service_rate(), 1.0);

        sat.record_outcome(QueryId::new(1), 2, &[(pid(1), Intention::new(1.0))]);
        sat.record_outcome(QueryId::new(2), 1, &[(pid(2), Intention::new(0.5))]);
        assert_eq!(sat.full_service_rate(), 0.5);
        assert!(sat.latest_query_satisfaction().is_some());
        assert_eq!(sat.interactions().count(), 2);
    }

    proptest! {
        #[test]
        fn prop_satisfaction_always_in_unit_interval(
            intentions in proptest::collection::vec(-1.0f64..=1.0, 0..10),
            required in 1usize..5,
        ) {
            let performed: Vec<(ProviderId, Intention)> = intentions
                .iter()
                .enumerate()
                .map(|(i, v)| (pid(i as u64), Intention::new(*v)))
                .collect();
            let interaction = ConsumerInteraction::new(QueryId::new(0), required, performed);
            let s = interaction.satisfaction().value();
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_more_liked_providers_never_decrease_satisfaction(
            base in -1.0f64..=1.0,
            extra in 0.0f64..=1.0,
            required in 2usize..5,
        ) {
            let one = ConsumerInteraction::new(
                QueryId::new(0),
                required,
                vec![(pid(1), Intention::new(base))],
            );
            let two = ConsumerInteraction::new(
                QueryId::new(0),
                required,
                vec![(pid(1), Intention::new(base)), (pid(2), Intention::new(extra))],
            );
            prop_assert!(two.satisfaction() >= one.satisfaction());
        }

        #[test]
        fn prop_long_run_mean_bounded_by_extremes(
            values in proptest::collection::vec(-1.0f64..=1.0, 1..30),
            k in 1usize..40,
        ) {
            let mut sat = ConsumerSatisfaction::new(k);
            for (i, v) in values.iter().enumerate() {
                sat.record_outcome(
                    QueryId::new(i as u64),
                    1,
                    &[(pid(0), Intention::new(*v))],
                );
            }
            let s = sat.satisfaction().value();
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
