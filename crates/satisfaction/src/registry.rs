//! The mediator-side satisfaction registry.
//!
//! To compute ω (Equation 2) the mediator needs to know, at mediation time,
//! the current satisfaction of the issuing consumer and of every candidate
//! provider. [`SatisfactionRegistry`] is that bookkeeping: it owns one
//! [`ConsumerSatisfaction`] per registered consumer and one
//! [`ProviderSatisfaction`] per registered provider, and is updated after
//! every mediation with the information the paper says the mediator sends out
//! ("the mediation result to the consumer and all providers in set Kn").
//!
//! The registry is also the instrument of Scenario 1: because it only relies
//! on expressed intentions and observed allocations, it can score *any*
//! allocation method — Capacity-based, Economic or SbQA — from a satisfaction
//! point of view.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sbqa_types::{ConsumerId, Intention, ProviderId, QueryId, Satisfaction};

use crate::consumer::ConsumerSatisfaction;
use crate::provider::ProviderSatisfaction;

/// Mediator-side record of every participant's satisfaction state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SatisfactionRegistry {
    window: usize,
    // sbqa-lint: allow(hash-collection, "per-id point lookups on the hot path; aggregation sorts ids before summing (analysis.rs)")
    consumers: HashMap<ConsumerId, ConsumerSatisfaction>,
    // sbqa-lint: allow(hash-collection, "per-id point lookups on the hot path; aggregation sorts ids before summing (analysis.rs)")
    providers: HashMap<ProviderId, ProviderSatisfaction>,
}

impl SatisfactionRegistry {
    /// Creates a registry whose participants remember their last `k`
    /// interactions.
    #[must_use]
    pub fn new(satisfaction_window: usize) -> Self {
        Self {
            window: satisfaction_window.max(1),
            // sbqa-lint: allow(hash-collection, "per-id point lookups on the hot path; aggregation sorts ids before summing (analysis.rs)")
            consumers: HashMap::new(),
            // sbqa-lint: allow(hash-collection, "per-id point lookups on the hot path; aggregation sorts ids before summing (analysis.rs)")
            providers: HashMap::new(),
        }
    }

    /// The interaction-window length used for new participants.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Registers a consumer if it is not yet known. Returns `true` if it was
    /// newly registered.
    pub fn register_consumer(&mut self, consumer: ConsumerId) -> bool {
        if self.consumers.contains_key(&consumer) {
            return false;
        }
        self.consumers
            .insert(consumer, ConsumerSatisfaction::new(self.window));
        true
    }

    /// Registers a provider if it is not yet known. Returns `true` if it was
    /// newly registered.
    pub fn register_provider(&mut self, provider: ProviderId) -> bool {
        if self.providers.contains_key(&provider) {
            return false;
        }
        self.providers
            .insert(provider, ProviderSatisfaction::new(self.window));
        true
    }

    /// Removes a consumer (it left the system). Returns `true` if it existed.
    pub fn remove_consumer(&mut self, consumer: ConsumerId) -> bool {
        self.consumers.remove(&consumer).is_some()
    }

    /// Removes a provider (it left the system). Returns `true` if it existed.
    pub fn remove_provider(&mut self, provider: ProviderId) -> bool {
        self.providers.remove(&provider).is_some()
    }

    /// Takes a provider's tracker out of the registry, history intact, so a
    /// shard handoff can move the provider's satisfaction state to another
    /// registry instead of resetting it. The counterpart of
    /// [`SatisfactionRegistry::adopt_provider`].
    pub fn extract_provider(&mut self, provider: ProviderId) -> Option<ProviderSatisfaction> {
        self.providers.remove(&provider)
    }

    /// Installs a provider tracker extracted from another registry
    /// (replacing any existing tracker for that id). The tracker keeps its
    /// own window length: a provider mid-handoff must not have its
    /// interaction history rescaled by the destination's configuration.
    pub fn adopt_provider(&mut self, provider: ProviderId, tracker: ProviderSatisfaction) {
        self.providers.insert(provider, tracker);
    }

    /// Number of registered consumers.
    #[must_use]
    pub fn consumer_count(&self) -> usize {
        self.consumers.len()
    }

    /// Number of registered providers.
    #[must_use]
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Current satisfaction of a consumer. Unknown consumers are treated as
    /// fully satisfied newcomers, mirroring the tracker's cold-start rule.
    #[must_use]
    pub fn consumer_satisfaction(&self, consumer: ConsumerId) -> Satisfaction {
        self.consumers
            .get(&consumer)
            .map_or(Satisfaction::MAX, ConsumerSatisfaction::satisfaction)
    }

    /// Current satisfaction of a provider; unknown providers count as fully
    /// satisfied newcomers.
    #[must_use]
    pub fn provider_satisfaction(&self, provider: ProviderId) -> Satisfaction {
        self.providers
            .get(&provider)
            .map_or(Satisfaction::MAX, ProviderSatisfaction::satisfaction)
    }

    /// Immutable access to a consumer's tracker.
    #[must_use]
    pub fn consumer(&self, consumer: ConsumerId) -> Option<&ConsumerSatisfaction> {
        self.consumers.get(&consumer)
    }

    /// Immutable access to a provider's tracker.
    #[must_use]
    pub fn provider(&self, provider: ProviderId) -> Option<&ProviderSatisfaction> {
        self.providers.get(&provider)
    }

    /// Records the outcome of a mediation.
    ///
    /// * `consumer` and `required_results` identify the query's issuer and its
    ///   replication factor `q.n`;
    /// * `performed_by` lists the selected providers with the intention the
    ///   consumer had expressed towards each;
    /// * `proposals` lists *every* provider that was asked for an intention
    ///   (the set `Kn`), with the intention it expressed and whether it was
    ///   selected — exactly the information the paper says the mediator sends
    ///   back to "the consumer and all providers in set Kn".
    pub fn record_mediation(
        &mut self,
        query: QueryId,
        consumer: ConsumerId,
        required_results: usize,
        performed_by: &[(ProviderId, Intention)],
        proposals: &[(ProviderId, Intention, bool)],
    ) {
        self.register_consumer(consumer);
        if let Some(tracker) = self.consumers.get_mut(&consumer) {
            tracker.record_outcome(query, required_results, performed_by);
        }
        for (provider, intention, performed) in proposals {
            self.register_provider(*provider);
            if let Some(tracker) = self.providers.get_mut(provider) {
                tracker.record_proposal(query, *intention, *performed);
            }
        }
    }

    /// Iterates over `(id, satisfaction)` for every registered consumer.
    pub fn consumer_satisfactions(&self) -> impl Iterator<Item = (ConsumerId, Satisfaction)> + '_ {
        self.consumers
            .iter()
            .map(|(id, tracker)| (*id, tracker.satisfaction()))
    }

    /// Iterates over `(id, satisfaction)` for every registered provider.
    pub fn provider_satisfactions(&self) -> impl Iterator<Item = (ProviderId, Satisfaction)> + '_ {
        self.providers
            .iter()
            .map(|(id, tracker)| (*id, tracker.satisfaction()))
    }

    /// The balancing parameter ω of Equation 2 for a given consumer/provider
    /// pair, read from the registry's current state.
    #[must_use]
    pub fn omega(&self, consumer: ConsumerId, provider: ProviderId) -> f64 {
        self.consumer_satisfaction(consumer)
            .omega_against(self.provider_satisfaction(provider))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(raw: u64) -> ConsumerId {
        ConsumerId::new(raw)
    }

    fn pid(raw: u64) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = SatisfactionRegistry::new(10);
        assert!(reg.register_consumer(cid(1)));
        assert!(!reg.register_consumer(cid(1)));
        assert!(reg.register_provider(pid(1)));
        assert!(!reg.register_provider(pid(1)));
        assert_eq!(reg.consumer_count(), 1);
        assert_eq!(reg.provider_count(), 1);
        assert_eq!(reg.window(), 10);
    }

    #[test]
    fn unknown_participants_are_satisfied_newcomers() {
        let reg = SatisfactionRegistry::new(10);
        assert_eq!(reg.consumer_satisfaction(cid(9)), Satisfaction::MAX);
        assert_eq!(reg.provider_satisfaction(pid(9)), Satisfaction::MAX);
        assert!((reg.omega(cid(9), pid(9)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn record_mediation_updates_both_sides() {
        let mut reg = SatisfactionRegistry::new(10);
        let selected = vec![(pid(1), Intention::new(1.0))];
        let proposals = vec![
            (pid(1), Intention::new(0.5), true),
            (pid(2), Intention::new(0.9), false),
        ];
        reg.record_mediation(QueryId::new(1), cid(1), 1, &selected, &proposals);

        // The consumer got its preferred provider: fully satisfied.
        assert_eq!(reg.consumer_satisfaction(cid(1)), Satisfaction::MAX);
        // Provider 1 performed a query it valued at 0.5 -> (0.5+1)/2 = 0.75.
        assert!((reg.provider_satisfaction(pid(1)).value() - 0.75).abs() < 1e-12);
        // Provider 2 was proposed a query but did not perform it -> 0.
        assert_eq!(reg.provider_satisfaction(pid(2)), Satisfaction::MIN);
        assert_eq!(reg.consumer_count(), 1);
        assert_eq!(reg.provider_count(), 2);
    }

    #[test]
    fn omega_shifts_towards_the_dissatisfied_side() {
        let mut reg = SatisfactionRegistry::new(10);
        // Build a dissatisfied provider and a satisfied consumer.
        reg.record_mediation(
            QueryId::new(1),
            cid(1),
            1,
            &[(pid(1), Intention::new(1.0))],
            &[
                (pid(1), Intention::new(1.0), true),
                (pid(2), Intention::new(0.9), false),
            ],
        );
        // Consumer fully satisfied (1.0), provider 2 fully dissatisfied (0.0):
        // ω = ((1 - 0) + 1) / 2 = 1 -> all the weight on the provider's intention.
        assert!((reg.omega(cid(1), pid(2)) - 1.0).abs() < 1e-12);
        // Against the satisfied provider 1 the weight stays balanced-ish.
        assert!(reg.omega(cid(1), pid(1)) < 1.0);
    }

    #[test]
    fn removal_forgets_participants() {
        let mut reg = SatisfactionRegistry::new(5);
        reg.register_consumer(cid(1));
        reg.register_provider(pid(1));
        assert!(reg.remove_consumer(cid(1)));
        assert!(!reg.remove_consumer(cid(1)));
        assert!(reg.remove_provider(pid(1)));
        assert!(!reg.remove_provider(pid(1)));
        assert_eq!(reg.consumer_count(), 0);
        assert_eq!(reg.provider_count(), 0);
    }

    #[test]
    fn satisfaction_iterators_cover_all_participants() {
        let mut reg = SatisfactionRegistry::new(5);
        reg.register_consumer(cid(1));
        reg.register_consumer(cid(2));
        reg.register_provider(pid(3));
        assert_eq!(reg.consumer_satisfactions().count(), 2);
        assert_eq!(reg.provider_satisfactions().count(), 1);
        assert!(reg.consumer(cid(1)).is_some());
        assert!(reg.provider(pid(3)).is_some());
        assert!(reg.consumer(cid(99)).is_none());
        assert!(reg.provider(pid(99)).is_none());
    }
}
