//! Adequation and allocation efficiency.
//!
//! The demo paper only presents the *satisfaction* notion, but mentions that
//! the complete model of the SQLB paper (VLDB 2007) also defines an
//! **adequation** and an **allocation satisfaction** notion. We reconstruct
//! them here because the experiment reports use them to separate two causes
//! of dissatisfaction:
//!
//! * **Adequation** measures how well the *system as a whole* matches a
//!   participant's interests, independently of the mediator's choices. A
//!   provider surrounded by queries it hates has low adequation — no
//!   allocation strategy can make it happy. For a provider we define it as
//!   the mean unit-mapped intention over *all* proposed queries in the
//!   window; for a consumer, as the mean over its queries of the best
//!   attainable per-query satisfaction (intentions towards the `n` most
//!   preferred capable providers).
//! * **Allocation efficiency** is the ratio `satisfaction / adequation`
//!   (clamped to `[0, 1]`): the fraction of the attainable satisfaction the
//!   mediator actually delivered. An efficiency of 1 means the mediator did
//!   as well as the environment allowed; a low efficiency with a high
//!   adequation points at a poor allocation strategy rather than a poor
//!   match between the participant and the system.
//!
//! These definitions follow the *intent* documented in the SbQA/SQLB papers
//! (separating "the system is inadequate for me" from "the mediator ignores
//! me"); the exact formulas are our reconstruction and are documented as such
//! in `DESIGN.md`.

use serde::{Deserialize, Serialize};

use sbqa_types::{Intention, Satisfaction};

use crate::consumer::ConsumerSatisfaction;
use crate::provider::ProviderSatisfaction;

/// Consumer-side adequation: the satisfaction the consumer *could* have had
/// if the mediator always picked the providers it preferred.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumerAdequation(pub Satisfaction);

/// Provider-side adequation: how interesting the proposed workload is to the
/// provider, regardless of what it got to perform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderAdequation(pub Satisfaction);

/// The ratio of delivered satisfaction to attainable satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationEfficiency(pub f64);

impl AllocationEfficiency {
    /// Computes `satisfaction / adequation`, clamped to `[0, 1]`.
    ///
    /// A zero adequation (the system has nothing to offer this participant)
    /// yields an efficiency of 1: the mediator cannot be blamed for an
    /// environment with no attainable satisfaction.
    #[must_use]
    pub fn from_parts(satisfaction: Satisfaction, adequation: Satisfaction) -> Self {
        if adequation.value() <= f64::EPSILON {
            return Self(1.0);
        }
        Self((satisfaction.value() / adequation.value()).clamp(0.0, 1.0))
    }

    /// The efficiency value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

/// Computes the consumer adequation from the per-query *best attainable*
/// satisfactions supplied by the caller.
///
/// The caller (the mediator or the simulator) knows, for each remembered
/// query, the intentions the consumer expressed towards every capable
/// provider; it passes the mean of the `n` highest unit-mapped intentions for
/// each query. This function simply averages them, mirroring Definition 1.
#[must_use]
pub fn consumer_adequation(best_attainable: &[Satisfaction]) -> ConsumerAdequation {
    match Satisfaction::mean(best_attainable) {
        Some(mean) => ConsumerAdequation(mean),
        None => ConsumerAdequation(Satisfaction::MAX),
    }
}

/// Computes the best attainable per-query satisfaction for a consumer that
/// required `n` results and expressed the given intentions towards the
/// capable providers.
///
/// This is the building block the mediator feeds into
/// [`consumer_adequation`]: take the `n` most preferred providers and average
/// their unit-mapped intentions over `n` (missing providers count as zero,
/// exactly as in Equation 1).
#[must_use]
pub fn best_attainable_satisfaction(intentions: &[Intention], n: usize) -> Satisfaction {
    let n = n.max(1);
    let mut units: Vec<f64> = intentions.iter().map(|i| i.to_unit().value()).collect();
    sbqa_types::float_ord::sort_descending(&mut units);
    let sum: f64 = units.iter().take(n).sum();
    Satisfaction::new(sum / n as f64)
}

/// Computes the provider adequation directly from its satisfaction tracker:
/// the mean unit-mapped intention over all proposals in the window.
#[must_use]
pub fn provider_adequation(tracker: &ProviderSatisfaction) -> ProviderAdequation {
    if tracker.observed_proposals() == 0 {
        return ProviderAdequation(Satisfaction::MAX);
    }
    ProviderAdequation(tracker.mean_proposed_intention().to_unit())
}

/// Computes the provider's allocation efficiency from its tracker.
#[must_use]
pub fn provider_allocation_efficiency(tracker: &ProviderSatisfaction) -> AllocationEfficiency {
    AllocationEfficiency::from_parts(tracker.satisfaction(), provider_adequation(tracker).0)
}

/// Computes the consumer's allocation efficiency given its tracker and the
/// per-query best attainable satisfactions.
#[must_use]
pub fn consumer_allocation_efficiency(
    tracker: &ConsumerSatisfaction,
    best_attainable: &[Satisfaction],
) -> AllocationEfficiency {
    AllocationEfficiency::from_parts(
        tracker.satisfaction(),
        consumer_adequation(best_attainable).0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sbqa_types::QueryId;

    #[test]
    fn best_attainable_takes_top_n() {
        let intentions = vec![
            Intention::new(1.0),
            Intention::new(-1.0),
            Intention::new(0.0),
        ];
        // n = 1: only the best provider counts -> (1+1)/2 = 1.0
        assert_eq!(
            best_attainable_satisfaction(&intentions, 1),
            Satisfaction::MAX
        );
        // n = 2: best two are 1.0 and 0.5 -> 0.75
        assert!((best_attainable_satisfaction(&intentions, 2).value() - 0.75).abs() < 1e-12);
        // n = 4 with only three providers: missing one counts as zero.
        let expected = (1.0 + 0.5 + 0.0) / 4.0;
        assert!((best_attainable_satisfaction(&intentions, 4).value() - expected).abs() < 1e-12);
    }

    #[test]
    fn best_attainable_of_empty_set_is_zero() {
        assert_eq!(best_attainable_satisfaction(&[], 2), Satisfaction::MIN);
    }

    #[test]
    fn consumer_adequation_averages_queries() {
        let adequation = consumer_adequation(&[Satisfaction::new(1.0), Satisfaction::new(0.5)]);
        assert!((adequation.0.value() - 0.75).abs() < 1e-12);
        // No history yet: fully adequate.
        assert_eq!(consumer_adequation(&[]).0, Satisfaction::MAX);
    }

    #[test]
    fn provider_adequation_uses_all_proposals() {
        let mut tracker = ProviderSatisfaction::new(10);
        tracker.record_proposal(QueryId::new(1), Intention::new(1.0), false);
        tracker.record_proposal(QueryId::new(2), Intention::new(-1.0), false);
        // Adequation = mean unit intention = 0.5 even though nothing was performed.
        assert!((provider_adequation(&tracker).0.value() - 0.5).abs() < 1e-12);
        assert_eq!(
            provider_adequation(&ProviderSatisfaction::new(4)).0,
            Satisfaction::MAX
        );
    }

    #[test]
    fn efficiency_separates_mediator_blame_from_environment_blame() {
        let mut tracker = ProviderSatisfaction::new(10);
        // Interesting workload, never selected: adequation 1, satisfaction 0,
        // efficiency 0 — the mediator is to blame.
        tracker.record_proposal(QueryId::new(1), Intention::new(1.0), false);
        tracker.record_proposal(QueryId::new(2), Intention::new(1.0), false);
        let eff = provider_allocation_efficiency(&tracker);
        assert_eq!(eff.value(), 0.0);

        // Uninteresting workload, always selected: satisfaction 0, adequation 0,
        // efficiency 1 — the environment is to blame, not the mediator.
        let mut tracker = ProviderSatisfaction::new(10);
        tracker.record_proposal(QueryId::new(1), Intention::new(-1.0), true);
        let eff = provider_allocation_efficiency(&tracker);
        assert_eq!(eff.value(), 1.0);
    }

    #[test]
    fn consumer_efficiency_compares_to_attainable() {
        let mut tracker = ConsumerSatisfaction::new(10);
        tracker.record_outcome(
            QueryId::new(1),
            1,
            &[(sbqa_types::ProviderId::new(1), Intention::new(0.0))],
        );
        // Got 0.5, could have had 1.0 -> efficiency 0.5.
        let eff = consumer_allocation_efficiency(&tracker, &[Satisfaction::MAX]);
        assert!((eff.value() - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_efficiency_in_unit_interval(s in 0.0f64..=1.0, a in 0.0f64..=1.0) {
            let eff = AllocationEfficiency::from_parts(Satisfaction::new(s), Satisfaction::new(a));
            prop_assert!((0.0..=1.0).contains(&eff.value()));
        }

        #[test]
        fn prop_best_attainable_monotone_in_intentions(
            intentions in proptest::collection::vec(-1.0f64..=1.0, 1..10),
            n in 1usize..5,
        ) {
            let base: Vec<Intention> = intentions.iter().copied().map(Intention::new).collect();
            let improved: Vec<Intention> = base.iter().map(|_| Intention::MAX).collect();
            prop_assert!(
                best_attainable_satisfaction(&improved, n) >= best_attainable_satisfaction(&base, n)
            );
        }
    }
}
