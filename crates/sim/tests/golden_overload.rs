//! Golden overload byte-identity gate (seed 42).
//!
//! Drives a deterministic stream with a sustained **100× arrival step**
//! through the bounded-ring service with the degradation ladder armed, and
//! pins the outcome-stream digest *and* the shed-set digest: the overload
//! sacrifice — which queries ride which tier, which are shed — must be
//! byte-identical across runs and across producer chunk sizes, and must
//! match history. A refactor that changes tier thresholds, leak
//! arithmetic, drain order or the chunk normalization trips this gate.

use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_core::{DegradationConfig, SystemConfig};
use sbqa_service::IngestConfig;
use sbqa_sim::{
    generate_stepped_stream, run_overload_service, ConsumerSpec, LoadStep, OverloadRunConfig,
    ProviderSpec, WorkloadModel,
};
use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId};

/// Pinned outcomes of the seed-42 run under a 100× step. On intended
/// drift, re-run with `--nocapture` and copy the printed replacements.
const GOLDEN_DIGEST: u64 = 0x1037_6273_5af7_af43;
const GOLDEN_SHED_DIGEST: u64 = 0x1ec9_7e47_472a_9b76;
const GOLDEN_SHED: u64 = 1_218;

const STREAM_LEN: usize = 2_000;

fn consumers() -> Vec<ConsumerSpec> {
    (0..4u64)
        .map(|c| {
            ConsumerSpec::new(
                ConsumerId::new(c),
                Capability::new((c % 3) as u8),
                2.0,
                1.0,
                1,
                ConsumerProfile::default(),
            )
        })
        .collect()
}

fn providers() -> Vec<ProviderSpec> {
    (0..36u64)
        .map(|p| {
            ProviderSpec::new(
                ProviderId::new(1_000 + p),
                CapabilitySet::from_capabilities([
                    Capability::new((p % 3) as u8),
                    Capability::new(((p + 1) % 3) as u8),
                ]),
                1.0 + (p % 2) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

fn config(batch: usize) -> OverloadRunConfig {
    OverloadRunConfig {
        shards: 2,
        batch,
        seed: 42,
        system: SystemConfig::default().with_knbest(10, 3),
        ingest: IngestConfig {
            ring_capacity: 256,
            // The base arrival rate of the 4 consumers is ~8/s; the ladder's
            // drain model sits comfortably above it, so the pre-step stream
            // rides Normal. The 100× step (→ ~800/s) buries the model and
            // must climb every tier.
            degradation: Some(DegradationConfig {
                capacity: 64,
                drain_rate: 40.0,
                ..DegradationConfig::default()
            }),
        },
        step: Some(LoadStep {
            at_fraction: 0.25,
            rate_multiplier: 100.0,
        }),
    }
}

#[test]
fn overload_run_seed42_is_byte_identical_and_pinned() {
    let consumers = consumers();
    let providers = providers();
    let config = config(64);
    let stream = generate_stepped_stream(
        &consumers,
        &WorkloadModel::default(),
        STREAM_LEN,
        config.seed,
        config.step,
    );

    let golden = run_overload_service(&config, &providers, &consumers, &stream).unwrap();

    // On drift, these are the replacement values for the GOLDEN constants.
    println!(
        "digest {:#018x} shed_digest {:#018x} shed {}",
        golden.digest, golden.shed_digest, golden.shed
    );

    // All three degraded tiers (and Normal) are exercised and counted.
    let stats = golden.degradation.expect("ladder armed");
    assert!(stats.normal > 0, "tier counters: {stats:?}");
    assert!(stats.shrink_kn > 0, "tier counters: {stats:?}");
    assert!(stats.baseline > 0, "tier counters: {stats:?}");
    assert!(stats.shed > 0, "tier counters: {stats:?}");
    // Conservation over the whole stream.
    assert_eq!(stats.observed() as usize, STREAM_LEN);
    assert_eq!(golden.report.outcomes.len(), STREAM_LEN);
    assert_eq!(
        stats.admitted() as usize,
        golden.report.total.submitted(),
        "admitted = mediated + starved"
    );

    // Byte-identical across runs.
    let again = run_overload_service(&config, &providers, &consumers, &stream).unwrap();
    assert_eq!(golden.digest, again.digest);
    assert_eq!(golden.shed_digest, again.shed_digest);

    // Byte-identical across producer chunk sizes.
    for batch in [16usize, 999] {
        let mut rechunked_config = config.clone();
        rechunked_config.batch = batch;
        let rechunked =
            run_overload_service(&rechunked_config, &providers, &consumers, &stream).unwrap();
        assert_eq!(
            golden.digest, rechunked.digest,
            "chunk size {batch} changed the outcome stream"
        );
        assert_eq!(
            golden.shed_digest, rechunked.shed_digest,
            "chunk size {batch} changed the shed set"
        );
    }

    // The pinned trajectory: the run must also match history.
    assert_eq!(golden.digest, GOLDEN_DIGEST, "outcome digest drifted");
    assert_eq!(
        golden.shed_digest, GOLDEN_SHED_DIGEST,
        "shed-set digest drifted"
    );
    assert_eq!(golden.shed, GOLDEN_SHED, "shed count drifted");
}
