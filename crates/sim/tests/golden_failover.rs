//! Golden failover byte-identity gate (seed 42).
//!
//! Drives the same deterministic stream — with mid-run registry churn —
//! through a replicated two-shard service twice: once uninterrupted, once
//! with both shards' primaries killed at a scheduled virtual time and their
//! standbys promoted. The merged `(VirtualTime, QueryId)`-ordered outcome
//! streams must be **byte-identical**, and their shared digest is pinned so
//! a refactor that changes either run's allocation trajectory (RNG
//! consumption, replay ordering, churn derivation) trips this gate even if
//! the two runs still agree with each other.

use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
use sbqa_core::SystemConfig;
use sbqa_sim::{
    generate_query_stream, run_replicated_service, ConsumerSpec, FailoverRunConfig, FaultPlan,
    ProviderSpec, WorkloadModel,
};
use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, VirtualTime};

/// Pinned outcomes of the seed-42 run: (mediated, starved, outcome digest,
/// crash virtual time of the plan).
const GOLDEN_MEDIATED: usize = 400;
const GOLDEN_STARVED: usize = 0;
const GOLDEN_DIGEST: u64 = 0x1177_9275_a73a_1c4c;

fn consumers() -> Vec<ConsumerSpec> {
    (0..4u64)
        .map(|c| {
            ConsumerSpec::new(
                ConsumerId::new(c),
                Capability::new((c % 3) as u8),
                2.0,
                1.0,
                1,
                ConsumerProfile::default(),
            )
        })
        .collect()
}

fn providers() -> Vec<ProviderSpec> {
    (0..36u64)
        .map(|p| {
            ProviderSpec::new(
                ProviderId::new(1_000 + p),
                CapabilitySet::from_capabilities([
                    Capability::new((p % 3) as u8),
                    Capability::new(((p + 1) % 3) as u8),
                ]),
                1.0 + (p % 2) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

fn config() -> FailoverRunConfig {
    FailoverRunConfig {
        shards: 2,
        batch: 32,
        seed: 42,
        system: SystemConfig::default().with_knbest(10, 3),
        checkpoint_interval: 4,
        churn_per_batch: 5,
    }
}

#[test]
fn failover_run_seed42_is_byte_identical_and_pinned() {
    let consumers = consumers();
    let providers = providers();
    let stream = generate_query_stream(&consumers, &WorkloadModel::default(), 400, 42);
    let config = config();

    let calm = run_replicated_service(&config, &providers, &consumers, &stream, &FaultPlan::new())
        .unwrap();
    let crash_time = stream[stream.len() / 2].issued_at;
    let plan = FaultPlan::new()
        .crash_at(crash_time, 0)
        .crash_at(crash_time, 1);
    let stormy = run_replicated_service(&config, &providers, &consumers, &stream, &plan).unwrap();

    // On drift, these are the replacement values for the GOLDEN constants.
    println!(
        "mediated {} starved {} digest {:#018x} crash at {}",
        calm.mediated(),
        calm.starved(),
        calm.outcome_digest(),
        crash_time.seconds(),
    );

    // The headline property: a run that loses both primaries mid-stream is
    // byte-identical to one that never crashed.
    assert_eq!(stormy.crashes_fired, 2);
    assert_eq!(calm.outcomes, stormy.outcomes);
    assert_eq!(calm.outcome_digest(), stormy.outcome_digest());

    // The pinned trajectory: both runs must also match history.
    assert_eq!(calm.mediated(), GOLDEN_MEDIATED, "mediated count drifted");
    assert_eq!(calm.starved(), GOLDEN_STARVED, "starved count drifted");
    assert_eq!(
        calm.outcome_digest(),
        GOLDEN_DIGEST,
        "outcome stream digest drifted"
    );

    // Promotion really happened and really replayed work.
    let stats = stormy.replication_stats().unwrap();
    assert_eq!(stats.promotions, 2);
    let replayed: usize = stormy
        .replays
        .iter()
        .map(|(_, r)| r.queries_mediated + r.queries_starved)
        .sum();
    assert!(replayed > 0, "promotion replayed no journaled queries");
}

#[test]
fn failover_run_seed42_is_reproducible() {
    let consumers = consumers();
    let providers = providers();
    let stream = generate_query_stream(&consumers, &WorkloadModel::default(), 400, 42);
    let plan = FaultPlan::new().crash_at(VirtualTime::new(10.0), 1);
    let a = run_replicated_service(&config(), &providers, &consumers, &stream, &plan).unwrap();
    let b = run_replicated_service(&config(), &providers, &consumers, &stream, &plan).unwrap();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.crashes_fired, b.crashes_fired);
    assert_eq!(a.outcome_digest(), b.outcome_digest());
}
