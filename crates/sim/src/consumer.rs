//! Simulated consumers.
//!
//! A consumer issues queries following a Poisson process (exponential
//! inter-arrival times at its configured rate), all requiring the same
//! capability (its "project application" in BOINC terms) and replicated
//! `replication` times for result validation. Its intention profile decides
//! how it ranks providers.

use serde::{Deserialize, Serialize};

use sbqa_core::intention::ConsumerProfile;
use sbqa_types::{Capability, CapabilityRequirement, CapabilitySet, ConsumerId, VirtualTime};

/// Static description of a consumer in a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerSpec {
    /// The consumer's identity.
    pub id: ConsumerId,
    /// The base capability requirement of its queries (defines `Pq`). The
    /// original single-capability consumers are the trivial `All{cap}` case.
    pub requirement: CapabilityRequirement,
    /// Additional capability classes its queries may require on top of the
    /// base requirement, used by the workload model's multi-capability mix
    /// (see [`WorkloadModel`](crate::workload::WorkloadModel)). Empty by
    /// default: the consumer then always issues its base requirement.
    pub extra_capabilities: CapabilitySet,
    /// Mean number of queries issued per virtual second.
    pub arrival_rate: f64,
    /// Mean size of a query in work units.
    pub mean_work_units: f64,
    /// Number of providers each query must be performed by (`q.n`).
    pub replication: usize,
    /// How the consumer computes its intentions towards providers.
    pub profile: ConsumerProfile,
}

impl ConsumerSpec {
    /// Creates a single-capability consumer spec with sanitised numeric
    /// fields — the original API surface, producing the trivial `All{cap}`
    /// requirement.
    #[must_use]
    pub fn new(
        id: ConsumerId,
        capability: Capability,
        arrival_rate: f64,
        mean_work_units: f64,
        replication: usize,
        profile: ConsumerProfile,
    ) -> Self {
        Self {
            id,
            requirement: CapabilityRequirement::single(capability),
            extra_capabilities: CapabilitySet::EMPTY,
            arrival_rate: if arrival_rate.is_finite() && arrival_rate > 0.0 {
                arrival_rate
            } else {
                1.0
            },
            mean_work_units: if mean_work_units.is_finite() && mean_work_units > 0.0 {
                mean_work_units
            } else {
                1.0
            },
            replication: replication.max(1),
            profile,
        }
    }

    /// Builder-style override of the base capability requirement.
    #[must_use]
    pub fn with_requirement(mut self, requirement: CapabilityRequirement) -> Self {
        self.requirement = requirement;
        self
    }

    /// Builder-style override of the extra capability classes the workload
    /// model may add to multi-capability queries.
    #[must_use]
    pub fn with_extra_capabilities(mut self, extra: CapabilitySet) -> Self {
        self.extra_capabilities = extra;
        self
    }
}

/// Runtime state of a simulated consumer.
#[derive(Debug, Clone)]
pub struct ConsumerState {
    /// The static spec this state was built from.
    pub spec: ConsumerSpec,
    /// `true` while the consumer is part of the system.
    pub online: bool,
    /// Virtual time at which the consumer departed, if it did.
    pub departed_at: Option<VirtualTime>,
    /// Number of queries issued so far.
    pub queries_issued: u64,
    /// Number of queries that completed (all required results delivered).
    pub queries_completed: u64,
    /// Number of queries the mediator could not allocate.
    pub queries_starved: u64,
}

impl ConsumerState {
    /// Creates the runtime state for a spec.
    #[must_use]
    pub fn new(spec: ConsumerSpec) -> Self {
        Self {
            spec,
            online: true,
            departed_at: None,
            queries_issued: 0,
            queries_completed: 0,
            queries_starved: 0,
        }
    }

    /// The consumer's identity.
    #[must_use]
    pub fn id(&self) -> ConsumerId {
        self.spec.id
    }

    /// Marks the consumer as departed: it stops issuing queries.
    pub fn depart(&mut self, at: VirtualTime) {
        self.online = false;
        self.departed_at = Some(at);
    }

    /// Fraction of issued queries that completed so far (1.0 before any
    /// query is issued).
    #[must_use]
    pub fn completion_rate(&self) -> f64 {
        if self.queries_issued == 0 {
            return 1.0;
        }
        self.queries_completed as f64 / self.queries_issued as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64, work: f64, replication: usize) -> ConsumerSpec {
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(0),
            rate,
            work,
            replication,
            ConsumerProfile::default(),
        )
    }

    #[test]
    fn spec_sanitises_degenerate_values() {
        let s = spec(-1.0, 0.0, 0);
        assert_eq!(s.arrival_rate, 1.0);
        assert_eq!(s.mean_work_units, 1.0);
        assert_eq!(s.replication, 1);
        assert_eq!(
            s.requirement,
            sbqa_types::CapabilityRequirement::single(Capability::new(0))
        );
        assert!(s.extra_capabilities.is_empty());

        let ok = spec(2.5, 3.0, 2);
        assert_eq!(ok.arrival_rate, 2.5);
        assert_eq!(ok.mean_work_units, 3.0);
        assert_eq!(ok.replication, 2);
    }

    #[test]
    fn requirement_and_extras_builders_apply() {
        use sbqa_types::{CapabilityRequirement, CapabilitySet};

        let set = CapabilitySet::from_capabilities([Capability::new(1), Capability::new(2)]);
        let s = spec(1.0, 1.0, 1)
            .with_requirement(CapabilityRequirement::Any(set))
            .with_extra_capabilities(CapabilitySet::singleton(Capability::new(5)));
        assert_eq!(s.requirement, CapabilityRequirement::Any(set));
        assert!(s.extra_capabilities.contains(Capability::new(5)));
    }

    #[test]
    fn state_tracks_counts_and_departure() {
        let mut state = ConsumerState::new(spec(1.0, 1.0, 1));
        assert!(state.online);
        assert_eq!(state.completion_rate(), 1.0);

        state.queries_issued = 4;
        state.queries_completed = 3;
        state.queries_starved = 1;
        assert!((state.completion_rate() - 0.75).abs() < 1e-12);

        state.depart(VirtualTime::new(50.0));
        assert!(!state.online);
        assert_eq!(state.departed_at, Some(VirtualTime::new(50.0)));
        assert_eq!(state.id(), ConsumerId::new(1));
    }
}
