//! Fault-injection runner: crash mediator shards at virtual times, promote
//! their standbys, and prove the outcome stream does not care.
//!
//! [`run_replicated_service`] drives the same deterministic open-loop
//! streams as [`crate::sharded`] through a
//! [`ReplicatedMediator`] — every shard paired with a delta-log-fed standby
//! — while a [`FaultPlan`] schedules primary crashes at virtual times.
//! Between batches the runner applies a deterministic registry churn (load
//! updates and online flips, a pure hash of `(seed, batch index)`), so the
//! replication stream carries real mutations, not just the bootstrap
//! registrations.
//!
//! The headline property, pinned by the golden failover test and the
//! `scenario_failover` harness: for a fixed `(seed, stream)`, the merged
//! `(VirtualTime, QueryId)`-ordered outcome stream of a run with crashes is
//! **byte-identical** to the uninterrupted run. Crashing a shard destroys
//! its registry, satisfaction state and allocator RNG; promotion rebuilds
//! all three from the standby's checkpoint + delta tail + query journal.

use std::time::Instant;

use sbqa_core::SystemConfig;
use sbqa_service::failover::{ReplayReport, ReplicationStats};
use sbqa_service::{OutcomeRecord, ReplicatedMediator, ShardReport};
use sbqa_types::{Query, SbqaResult, VirtualTime};

use crate::consumer::ConsumerSpec;
use crate::provider::ProviderSpec;
use crate::sharded::HashIntentions;

/// Crashes scheduled against a replicated run: each entry kills one shard's
/// primary at the batch boundary where virtual time first reaches `at`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<(VirtualTime, usize)>,
}

impl FaultPlan {
    /// An empty plan (the uninterrupted baseline).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a crash of `shard` at virtual time `at` (fires at the
    /// first batch whose earliest query was issued at or after `at`; shard
    /// indices wrap into the service's shard count).
    #[must_use]
    pub fn crash_at(mut self, at: VirtualTime, shard: usize) -> Self {
        self.crashes.push((at, shard));
        self.crashes.sort_by_key(|&(at, shard)| (at, shard));
        self
    }

    /// The scheduled crashes, ordered by time.
    #[must_use]
    pub fn crashes(&self) -> &[(VirtualTime, usize)] {
        &self.crashes
    }

    /// `true` if nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

/// Configuration of a replicated (failover) service run.
#[derive(Debug, Clone)]
pub struct FailoverRunConfig {
    /// Number of replicated shards.
    pub shards: usize,
    /// Queries per submitted batch.
    pub batch: usize,
    /// Seed for routing, per-shard allocators, oracle and churn.
    pub seed: u64,
    /// The SbQA configuration every shard runs.
    pub system: SystemConfig,
    /// Batches between automatic standby checkpoints (0 = never).
    pub checkpoint_interval: u64,
    /// Registry mutations injected between batches (load updates and
    /// online flips, deterministically derived from `(seed, batch)`).
    pub churn_per_batch: usize,
}

/// Results of one replicated run.
#[derive(Debug, Clone)]
pub struct FailoverRunReport {
    /// Every query's outcome in merged `(VirtualTime, QueryId)` order.
    pub outcomes: Vec<OutcomeRecord>,
    /// Per-shard tallies, latency and replication counters.
    pub shards: Vec<ShardReport>,
    /// One `(shard, replay tallies)` entry per crash fired.
    pub replays: Vec<(usize, ReplayReport)>,
    /// Crashes that actually fired (a plan entry past the stream's end
    /// never fires).
    pub crashes_fired: usize,
    /// Wall-clock span of the whole drain.
    pub wall: std::time::Duration,
}

impl FailoverRunReport {
    /// Queries mediated successfully.
    #[must_use]
    pub fn mediated(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.starved).count()
    }

    /// Queries that starved.
    #[must_use]
    pub fn starved(&self) -> usize {
        self.outcomes.len() - self.mediated()
    }

    /// Fleet-wide replication counters (every shard of a replicated run
    /// carries them).
    #[must_use]
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        let mut merged: Option<ReplicationStats> = None;
        for shard in &self.shards {
            if let Some(stats) = &shard.replication {
                merged
                    .get_or_insert_with(ReplicationStats::default)
                    .merge(stats);
            }
        }
        merged
    }

    /// FNV-1a digest of the whole outcome stream — two runs are
    /// byte-identical iff their digests (and lengths) agree, which is what
    /// the golden failover gate pins.
    #[must_use]
    pub fn outcome_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for outcome in &self.outcomes {
            for byte in outcome.query.raw().to_le_bytes() {
                eat(byte);
            }
            for byte in outcome.issued_at.seconds().to_bits().to_le_bytes() {
                eat(byte);
            }
            eat(u8::from(outcome.starved));
            for provider in &outcome.selected {
                for byte in provider.raw().to_le_bytes() {
                    eat(byte);
                }
            }
            eat(0xFF);
        }
        hash
    }
}

/// One deterministic churn hash step (SplitMix64 finalizer).
fn churn_hash(seed: u64, batch: u64, step: u64) -> u64 {
    let mut x = seed
        .wrapping_add(0x6368_7572_6E21_0000)
        .wrapping_add(batch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(step.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Applies the batch's deterministic registry churn: a pure function of
/// `(seed, batch index)`, so a crashed run and an uninterrupted run mutate
/// their registries identically.
fn apply_churn(
    service: &mut ReplicatedMediator,
    providers: &[ProviderSpec],
    config: &FailoverRunConfig,
    batch: u64,
) -> SbqaResult<()> {
    if providers.is_empty() {
        return Ok(());
    }
    for step in 0..config.churn_per_batch {
        let h = churn_hash(config.seed, batch, step as u64);
        let spec = &providers[(h as usize) % providers.len()];
        if h & 0b100 == 0 {
            let utilization = ((h >> 8) & 0xFF) as f64 / 32.0;
            let queue_length = ((h >> 16) & 0x7) as usize;
            service.update_provider_load(spec.id, utilization, queue_length)?;
        } else {
            service.set_provider_online(spec.id, h & 1 == 0)?;
        }
    }
    Ok(())
}

/// Registers the population, arms replication on every shard, then drains
/// the stream in `batch`-sized chunks — firing the plan's crashes at their
/// virtual times and injecting deterministic registry churn between batches.
///
/// # Errors
///
/// Configuration/arming errors, churn routing errors, or replication
/// replay errors during a promotion.
pub fn run_replicated_service(
    config: &FailoverRunConfig,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[Query],
    plan: &FaultPlan,
) -> SbqaResult<FailoverRunReport> {
    let mut service = ReplicatedMediator::sbqa(config.system.clone(), config.seed, config.shards)?;
    service.set_checkpoint_interval(config.checkpoint_interval);
    for spec in providers {
        service.register_provider(spec.id, spec.capabilities, spec.capacity)?;
    }
    for spec in consumers {
        service.register_consumer(spec.id);
    }
    let oracle = HashIntentions::new(config.seed);
    let router = *service.router();

    let mut pending = plan.crashes().to_vec();
    pending.sort_by_key(|&(at, shard)| (at, shard));
    let mut fired = 0usize;
    let mut replays = Vec::new();
    let mut outcomes = Vec::with_capacity(stream.len());

    // sbqa-lint: allow(wall-clock, "throughput measurement printed to the report only; allocation is driven by VirtualTime")
    let started = Instant::now();
    for (batch_index, chunk) in stream.chunks(config.batch.max(1)).enumerate() {
        if let Some(first) = chunk.first() {
            while fired < pending.len() && pending[fired].0 <= first.issued_at {
                let shard = pending[fired].1 % service.shard_count();
                let replay = service.crash_shard(shard, &oracle)?;
                replays.push((shard, replay));
                fired += 1;
            }
        }
        apply_churn(&mut service, providers, config, batch_index as u64)?;
        service.submit_batch(chunk, &oracle, |_, query, result| {
            let (selected, starved) = match result {
                Ok(decision) => (decision.selected.clone(), false),
                Err(_) => (Vec::new(), true),
            };
            outcomes.push(OutcomeRecord {
                shard: router.shard_of_query(query.id),
                query: query.id,
                consumer: query.consumer,
                issued_at: query.issued_at,
                selected,
                starved,
                shed: false,
            });
        })?;
    }
    let wall = started.elapsed();

    // The stream arrives sorted by (issued_at, id) and batches preserve
    // that order, so `outcomes` is already in merged order.
    Ok(FailoverRunReport {
        outcomes,
        shards: service.shard_reports(),
        replays,
        crashes_fired: fired,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::generate_query_stream;
    use crate::workload::WorkloadModel;
    use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId};

    fn consumers(n: u64) -> Vec<ConsumerSpec> {
        (0..n)
            .map(|c| {
                ConsumerSpec::new(
                    ConsumerId::new(c),
                    Capability::new((c % 3) as u8),
                    2.0,
                    1.0,
                    1,
                    ConsumerProfile::default(),
                )
            })
            .collect()
    }

    fn providers(n: u64) -> Vec<ProviderSpec> {
        (0..n)
            .map(|p| {
                ProviderSpec::new(
                    ProviderId::new(1_000 + p),
                    CapabilitySet::from_capabilities([
                        Capability::new((p % 3) as u8),
                        Capability::new(((p + 1) % 3) as u8),
                    ]),
                    1.0 + (p % 2) as f64,
                    ProviderProfile::default(),
                )
            })
            .collect()
    }

    fn config(shards: usize) -> FailoverRunConfig {
        FailoverRunConfig {
            shards,
            batch: 25,
            seed: 42,
            system: SystemConfig::default().with_knbest(10, 3),
            checkpoint_interval: 3,
            churn_per_batch: 4,
        }
    }

    #[test]
    fn crashed_run_is_byte_identical_to_uninterrupted() {
        let providers = providers(30);
        let consumers = consumers(3);
        let stream = generate_query_stream(&consumers, &WorkloadModel::default(), 300, 42);
        let config = config(2);

        let calm =
            run_replicated_service(&config, &providers, &consumers, &stream, &FaultPlan::new())
                .unwrap();
        let midpoint = stream[stream.len() / 2].issued_at;
        let plan = FaultPlan::new().crash_at(midpoint, 0).crash_at(midpoint, 1);
        let stormy =
            run_replicated_service(&config, &providers, &consumers, &stream, &plan).unwrap();

        assert_eq!(stormy.crashes_fired, 2);
        assert_eq!(stormy.replays.len(), 2);
        assert_eq!(calm.outcomes, stormy.outcomes);
        assert_eq!(calm.outcome_digest(), stormy.outcome_digest());
        // Promotions show up in the replication counters.
        let stats = stormy.replication_stats().unwrap();
        assert_eq!(stats.promotions, 2);
        assert_eq!(calm.replication_stats().unwrap().promotions, 0);
    }

    #[test]
    fn crashes_past_the_stream_never_fire() {
        let providers = providers(12);
        let consumers = consumers(2);
        let stream = generate_query_stream(&consumers, &WorkloadModel::default(), 60, 7);
        let far_future = stream.last().unwrap().issued_at + sbqa_types::Duration::new(1_000.0);
        let plan = FaultPlan::new().crash_at(far_future, 0);
        let report =
            run_replicated_service(&config(2), &providers, &consumers, &stream, &plan).unwrap();
        assert_eq!(report.crashes_fired, 0);
        assert!(report.replays.is_empty());
        assert_eq!(report.outcomes.len(), 60);
    }
}
