//! Network latency model.
//!
//! All messages (query dispatch, result delivery) traverse the same simple
//! network: a fixed base latency plus exponentially-distributed jitter. This
//! is the part of SimJava the paper actually relied on — a way to make
//! communication take time — and it is deliberately symmetrical and
//! topology-free: allocation effects, not routing effects, are what the
//! scenarios study.

use serde::{Deserialize, Serialize};

use sbqa_types::Duration;

use crate::config::NetworkConfig;
use crate::rng::SimRng;

/// Samples message latencies according to a [`NetworkConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    config: NetworkConfig,
}

impl NetworkModel {
    /// Creates a model from its configuration.
    #[must_use]
    pub fn new(config: NetworkConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Samples a one-way message latency.
    #[must_use]
    pub fn sample_latency(&self, rng: &mut SimRng) -> Duration {
        let jitter = if self.config.jitter_mean > 0.0 {
            rng.exponential(1.0 / self.config.jitter_mean)
        } else {
            0.0
        };
        Duration::new(self.config.base_latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantaneous_network_has_zero_latency() {
        let model = NetworkModel::new(NetworkConfig::instantaneous());
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(model.sample_latency(&mut rng), Duration::ZERO);
        }
    }

    #[test]
    fn latency_is_at_least_the_base() {
        let model = NetworkModel::new(NetworkConfig {
            base_latency: 0.5,
            jitter_mean: 0.1,
        });
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            assert!(model.sample_latency(&mut rng).seconds() >= 0.5);
        }
    }

    #[test]
    fn mean_latency_approximates_base_plus_jitter() {
        let model = NetworkModel::new(NetworkConfig {
            base_latency: 0.1,
            jitter_mean: 0.2,
        });
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| model.sample_latency(&mut rng).seconds())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean latency {mean}");
    }

    #[test]
    fn config_accessor_round_trips() {
        let config = NetworkConfig {
            base_latency: 0.25,
            jitter_mean: 0.0,
        };
        let model = NetworkModel::new(config);
        assert_eq!(*model.config(), config);
    }
}
