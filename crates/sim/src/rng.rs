//! Deterministic random-number streams for the simulation.
//!
//! Every stochastic ingredient of a run (query inter-arrival times, work
//! sizes, network jitter, KnBest draws) is derived from one user-supplied
//! seed, so that a scenario can be replayed bit-for-bit. We use ChaCha8
//! because its output is specified (unlike `StdRng`, whose algorithm may
//! change across `rand` releases), which keeps experiment outputs stable
//! across toolchain upgrades.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded random stream with the distribution helpers the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream. The label keeps sub-streams for
    /// different purposes (arrivals, network, allocator) decorrelated even if
    /// they are created in a different order.
    #[must_use]
    pub fn derive(&self, label: u64) -> Self {
        let mut seed_source = self.inner.clone();
        // Mix the label into a fresh seed drawn from the parent stream.
        let base = seed_source.next_u64();
        Self::new(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform draw in `[low, high)`. Returns `low` for degenerate ranges.
    pub fn uniform_in(&mut self, low: f64, high: f64) -> f64 {
        if high <= low || !low.is_finite() || !high.is_finite() {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// An exponential draw with the given rate (events per unit time).
    /// Returns 0 for non-positive rates.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 || rate.is_nan() || !rate.is_finite() {
            return 0.0;
        }
        // Inverse-CDF sampling; guard against ln(0).
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -u.ln() / rate
    }

    /// A draw from a uniform integer range `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        self.inner.gen_range(0..n)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.inner.gen::<f64>() < p
    }

    /// Mutable access to the underlying RNG, for APIs that take `impl Rng`.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let parent = SimRng::new(42);
        let mut c1 = parent.derive(1);
        let mut c1_again = parent.derive(1);
        let mut c2 = parent.derive(2);
        assert_eq!(c1.uniform(), c1_again.uniform());
        assert_ne!(c1.uniform(), c2.uniform());
    }

    #[test]
    fn exponential_handles_degenerate_rates() {
        let mut rng = SimRng::new(1);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
        assert_eq!(rng.exponential(f64::NAN), 0.0);
    }

    #[test]
    fn exponential_mean_is_roughly_inverse_rate() {
        let mut rng = SimRng::new(3);
        let rate = 2.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_and_index_bounds() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(f64::NAN));
        assert_eq!(rng.index(0), 0);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn uniform_in_degenerate_range_returns_low() {
        let mut rng = SimRng::new(5);
        assert_eq!(rng.uniform_in(3.0, 3.0), 3.0);
        assert_eq!(rng.uniform_in(5.0, 1.0), 5.0);
    }

    proptest! {
        #[test]
        fn prop_exponential_non_negative(seed in 0u64..1000, rate in 0.01f64..100.0) {
            let mut rng = SimRng::new(seed);
            for _ in 0..10 {
                prop_assert!(rng.exponential(rate) >= 0.0);
            }
        }

        #[test]
        fn prop_uniform_in_stays_in_range(seed in 0u64..1000, low in -100.0f64..100.0, span in 0.001f64..100.0) {
            let mut rng = SimRng::new(seed);
            let high = low + span;
            for _ in 0..10 {
                let v = rng.uniform_in(low, high);
                prop_assert!(v >= low && v < high);
            }
        }
    }
}
