//! Simulation reports.
//!
//! A [`SimulationReport`] gathers everything a scenario needs to print its
//! tables and curves: response-time statistics, the satisfaction analysis
//! over time, load-balance indicators, and the participant head-count
//! (who stayed, who left) that Scenario 4 is really about.

use serde::{Deserialize, Serialize};

use sbqa_core::PlanCacheStats;
use sbqa_metrics::{LoadBalanceReport, ResponseTimeStats, TimeSeries};
use sbqa_satisfaction::SatisfactionAnalysis;
use sbqa_types::{ProviderId, VirtualTime};

/// How many participants the run started with and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ParticipantCounts {
    /// Consumers present at the start of the run.
    pub initial_consumers: usize,
    /// Providers present at the start of the run.
    pub initial_providers: usize,
    /// Consumers still online at the end of the run.
    pub final_consumers: usize,
    /// Providers still online at the end of the run.
    pub final_providers: usize,
}

impl ParticipantCounts {
    /// Fraction of providers still online at the end (1.0 when the run
    /// started without providers).
    #[must_use]
    pub fn provider_retention(&self) -> f64 {
        if self.initial_providers == 0 {
            return 1.0;
        }
        self.final_providers as f64 / self.initial_providers as f64
    }

    /// Fraction of consumers still online at the end.
    #[must_use]
    pub fn consumer_retention(&self) -> f64 {
        if self.initial_consumers == 0 {
            return 1.0;
        }
        self.final_consumers as f64 / self.initial_consumers as f64
    }
}

/// The full outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Name of the allocation technique that was simulated.
    pub technique: String,
    /// Length of the run in virtual seconds.
    pub duration: f64,
    /// Master seed of the run.
    pub seed: u64,
    /// Number of queries issued by consumers during the run.
    pub queries_issued: u64,
    /// Response-time and completion statistics.
    pub response: ResponseTimeStats,
    /// Satisfaction snapshots over time.
    pub satisfaction: SatisfactionAnalysis,
    /// Per-provider number of queries performed, for load-balance analysis.
    pub queries_per_provider: Vec<(ProviderId, u64)>,
    /// Per-provider capacity, aligned with `queries_per_provider`.
    pub provider_capacities: Vec<(ProviderId, f64)>,
    /// Participant head-counts at the start and end of the run.
    pub participants: ParticipantCounts,
    /// Fraction of the initial aggregate provider capacity still online at
    /// the end of the run — the "total system capacity" the paper argues
    /// satisfaction-aware allocation preserves.
    pub capacity_retention: f64,
    /// Named time series sampled during the run (satisfaction, response
    /// times, online providers), the analogue of the demo's live plots.
    pub series: Vec<TimeSeries>,
    /// Final satisfaction of every consumer still online at the end of the
    /// run (departed consumers are absent).
    pub consumer_final_satisfaction: Vec<(sbqa_types::ConsumerId, f64)>,
    /// Final satisfaction of every provider still online at the end of the
    /// run (departed providers are absent).
    pub provider_final_satisfaction: Vec<(ProviderId, f64)>,
    /// Counters of the mediator's candidate-plan cache at the end of the
    /// run (all zero for single-capability workloads, which never merge).
    pub plan_cache: PlanCacheStats,
}

impl SimulationReport {
    /// Mean consumer satisfaction at the end of the run (last snapshot), or
    /// 0 if nothing was sampled.
    #[must_use]
    pub fn final_consumer_satisfaction(&self) -> f64 {
        self.satisfaction
            .latest()
            .map_or(0.0, |snap| snap.consumers.mean)
    }

    /// Mean provider satisfaction at the end of the run (last snapshot), or
    /// 0 if nothing was sampled.
    #[must_use]
    pub fn final_provider_satisfaction(&self) -> f64 {
        self.satisfaction
            .latest()
            .map_or(0.0, |snap| snap.providers.mean)
    }

    /// Load-balance report over queries performed per provider, normalised
    /// by provider capacity.
    #[must_use]
    pub fn load_balance(&self) -> LoadBalanceReport {
        let loads: Vec<f64> = self
            .queries_per_provider
            .iter()
            .map(|(_, n)| *n as f64)
            .collect();
        let capacities: Vec<f64> = self.provider_capacities.iter().map(|(_, c)| *c).collect();
        LoadBalanceReport::from_loads_and_capacities(&loads, &capacities)
    }

    /// Throughput in completed queries per virtual second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.response
            .throughput(sbqa_types::Duration::new(self.duration))
    }

    /// Looks up a named time series.
    #[must_use]
    pub fn series_named(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Steady-state mean of a named series, skipping the first
    /// `warmup_fraction` of the run.
    #[must_use]
    pub fn steady_state_mean(&self, name: &str, warmup_fraction: f64) -> f64 {
        let warmup = VirtualTime::new(self.duration * warmup_fraction.clamp(0.0, 1.0));
        self.series_named(name)
            .map_or(0.0, |s| s.mean_after(warmup))
    }

    /// The final satisfaction of a specific provider, if it is still online
    /// at the end of the run (departed providers return `None`).
    #[must_use]
    pub fn provider_satisfaction_of(&self, provider: ProviderId) -> Option<f64> {
        self.provider_final_satisfaction
            .iter()
            .find(|(id, _)| *id == provider)
            .map(|(_, s)| *s)
    }

    /// The final satisfaction of a specific consumer, if it is still online
    /// at the end of the run.
    #[must_use]
    pub fn consumer_satisfaction_of(&self, consumer: sbqa_types::ConsumerId) -> Option<f64> {
        self.consumer_final_satisfaction
            .iter()
            .find(|(id, _)| *id == consumer)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_metrics::TimeSeries;
    use sbqa_satisfaction::{SatisfactionAnalysis, SatisfactionSnapshot, SideSummary};

    fn snapshot(at: f64, consumer_mean: f64, provider_mean: f64) -> SatisfactionSnapshot {
        SatisfactionSnapshot {
            at: VirtualTime::new(at),
            consumers: SideSummary {
                count: 2,
                mean: consumer_mean,
                min: consumer_mean,
                max: consumer_mean,
                std_dev: 0.0,
                fraction_below_threshold: 0.0,
            },
            providers: SideSummary {
                count: 3,
                mean: provider_mean,
                min: provider_mean,
                max: provider_mean,
                std_dev: 0.0,
                fraction_below_threshold: 0.0,
            },
        }
    }

    fn report() -> SimulationReport {
        let mut analysis = SatisfactionAnalysis::new("SbQA");
        analysis.push(snapshot(10.0, 0.9, 0.2));
        analysis.push(snapshot(20.0, 0.8, 0.6));

        let mut series = TimeSeries::new("online_providers");
        series.push(VirtualTime::new(10.0), 3.0);
        series.push(VirtualTime::new(20.0), 2.0);

        SimulationReport {
            technique: "SbQA".to_string(),
            duration: 20.0,
            seed: 1,
            queries_issued: 10,
            response: ResponseTimeStats::new(),
            satisfaction: analysis,
            queries_per_provider: vec![
                (ProviderId::new(1), 4),
                (ProviderId::new(2), 4),
                (ProviderId::new(3), 2),
            ],
            provider_capacities: vec![
                (ProviderId::new(1), 2.0),
                (ProviderId::new(2), 2.0),
                (ProviderId::new(3), 1.0),
            ],
            participants: ParticipantCounts {
                initial_consumers: 2,
                initial_providers: 4,
                final_consumers: 2,
                final_providers: 3,
            },
            capacity_retention: 0.8,
            series: vec![series],
            consumer_final_satisfaction: vec![(sbqa_types::ConsumerId::new(1), 0.8)],
            provider_final_satisfaction: vec![(ProviderId::new(1), 0.6)],
            plan_cache: PlanCacheStats::default(),
        }
    }

    #[test]
    fn per_participant_satisfaction_lookup() {
        let r = report();
        assert_eq!(r.provider_satisfaction_of(ProviderId::new(1)), Some(0.6));
        assert_eq!(r.provider_satisfaction_of(ProviderId::new(99)), None);
        assert_eq!(
            r.consumer_satisfaction_of(sbqa_types::ConsumerId::new(1)),
            Some(0.8)
        );
        assert_eq!(
            r.consumer_satisfaction_of(sbqa_types::ConsumerId::new(9)),
            None
        );
    }

    #[test]
    fn retention_fractions() {
        let counts = report().participants;
        assert!((counts.provider_retention() - 0.75).abs() < 1e-12);
        assert!((counts.consumer_retention() - 1.0).abs() < 1e-12);
        assert_eq!(ParticipantCounts::default().provider_retention(), 1.0);
        assert_eq!(ParticipantCounts::default().consumer_retention(), 1.0);
    }

    #[test]
    fn final_satisfaction_reads_last_snapshot() {
        let r = report();
        assert!((r.final_consumer_satisfaction() - 0.8).abs() < 1e-12);
        assert!((r.final_provider_satisfaction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn load_balance_normalises_by_capacity() {
        let r = report();
        let balance = r.load_balance();
        assert_eq!(balance.providers, 3);
        // Per-capacity loads are 2, 2, 2: perfectly balanced.
        assert!(balance.gini.abs() < 1e-12);
    }

    #[test]
    fn series_lookup_and_steady_state() {
        let r = report();
        assert!(r.series_named("online_providers").is_some());
        assert!(r.series_named("missing").is_none());
        // Skipping the first three quarters of the run leaves only the
        // sample at t = 20 (value 2.0); skipping half keeps both samples.
        assert!((r.steady_state_mean("online_providers", 0.75) - 2.0).abs() < 1e-12);
        assert!((r.steady_state_mean("online_providers", 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(r.steady_state_mean("missing", 0.5), 0.0);
    }

    #[test]
    fn throughput_uses_duration() {
        let mut r = report();
        r.response.record_response(sbqa_types::Duration::new(1.0));
        r.response.record_response(sbqa_types::Duration::new(2.0));
        assert!((r.throughput() - 0.1).abs() < 1e-12);
    }
}
