//! # sbqa-sim
//!
//! A discrete-event simulator for distributed query allocation — the
//! substitute for the SimJava network simulation used by the paper's
//! prototype.
//!
//! The simulated world contains:
//!
//! * **consumers** that issue queries following a Poisson process, each with
//!   an intention profile (which providers they like, or whether they only
//!   care about response time),
//! * **providers** with heterogeneous capacity, a FIFO work queue and an
//!   intention profile (which consumers they like, or whether they only care
//!   about their own load),
//! * a **mediator** hosting any [`QueryAllocator`](sbqa_core::QueryAllocator)
//!   (SbQA or a baseline) plus the satisfaction registry,
//! * a simple **network model** adding latency between all parties,
//! * a **departure model** that distinguishes captive environments (nobody
//!   can leave) from autonomous ones (participants leave when their
//!   satisfaction drops below a threshold, as in Scenarios 2 and 4).
//!
//! Everything is driven by a virtual clock and a binary-heap event queue;
//! runs are fully deterministic for a given seed.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod config;
pub mod consumer;
pub mod departure;
pub mod event;
pub mod failover;
pub mod network;
pub mod overload;
pub mod provider;
pub mod report;
pub mod rng;
pub mod runner;
pub mod sharded;
pub mod workload;

pub use adaptive::{
    generate_stepped_stream, run_adaptive_case, AdaptiveOracle, AdaptiveRunConfig,
    AdaptiveRunReport, LoadStep,
};
pub use config::{DeparturePolicy, NetworkConfig, SimulationConfig};
pub use consumer::{ConsumerSpec, ConsumerState};
pub use event::{Event, EventQueue, ScheduledEvent};
pub use failover::{run_replicated_service, FailoverRunConfig, FailoverRunReport, FaultPlan};
pub use network::NetworkModel;
pub use overload::{
    admitted_satisfaction, outcome_digest, run_overload_service, shed_digest, OverloadRunConfig,
    OverloadRunReport,
};
pub use provider::{ProviderSpec, ProviderState};
pub use report::{ParticipantCounts, SimulationReport};
pub use rng::SimRng;
pub use runner::{Simulation, SimulationBuilder};
pub use sharded::{
    generate_query_stream, run_sharded_service, run_single_mediator, BaselineRun, HashIntentions,
    ShardedRunConfig,
};
pub use workload::WorkloadModel;
