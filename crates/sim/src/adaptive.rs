//! Open-loop adaptive-`kn` experiment runner.
//!
//! The paper's Scenario 6 sweeps the KnBest exploration width `kn`
//! statically; the adaptive-`kn` controller (`sbqa_core::adaptive`) is
//! supposed to make that sweep unnecessary by moving `kn` at runtime from
//! the observed satisfaction gap. This module builds the closed feedback
//! loop that claim needs to be *tested* against, on top of the open-loop
//! stream vocabulary of [`sharded`](crate::sharded):
//!
//! * **persistent intentions** ([`AdaptiveOracle`]): every
//!   (consumer, provider) pair has a fixed mutual preference (a pure seeded
//!   hash), so intention-driven allocation concentrates work on genuinely
//!   preferred providers instead of washing out across random per-query
//!   preferences;
//! * **load feedback**: each allocation adds the query's service time to the
//!   winner's backlog, backlogs drain in virtual time, and providers blend
//!   their preference with their current load
//!   ([`load_to_intention`]) — an
//!   overloaded provider performs queries it now dislikes, which is exactly
//!   what drags its Definition-2 satisfaction (and with it the gap signal)
//!   down;
//! * **a load step** ([`LoadStep`]): the arrival rate multiplies mid-stream,
//!   pushing the system past comfortable capacity;
//! * **dissatisfaction departures**: providers whose long-run satisfaction
//!   falls below a threshold leave for good — the paper's central premise
//!   that capacity follows satisfaction.
//!
//! Under this loop a *large static* `kn` buys high consumer satisfaction in
//! calm conditions but concentrates load on preferred providers once the
//! step hits, driving their satisfaction under the departure threshold —
//! capacity leaves precisely when it is scarcest. A *small static* `kn`
//! load-balances safely but leaves consumer satisfaction on the table. The
//! adaptive controller rides the wide setting while the gap is healthy and
//! retreats when it widens; `scenario_adaptive` measures all of them on the
//! same stream.
//!
//! Everything is deterministic per seed: the stream, the oracle, the load
//! mirror (providers iterated in spec order) and the departure rule consume
//! no wall-clock state.

use std::cell::RefCell;
use std::collections::HashMap;

use sbqa_core::allocator::IntentionOracle;
use sbqa_core::intention::load_to_intention;
use sbqa_core::{BatchReport, KnAdjustment, KnControllerConfig, SystemConfig};
use sbqa_metrics::TimeSeries;
use sbqa_service::ShardedMediator;
use sbqa_types::{IdGenerator, Intention, ProviderId, Query, SbqaResult, VirtualTime};

use crate::consumer::ConsumerSpec;
use crate::provider::ProviderSpec;
use crate::rng::SimRng;
use crate::sharded::generate_query_stream;
use crate::workload::WorkloadModel;

/// A mid-stream arrival-rate step: after `at_fraction` of the stream has
/// been generated, every consumer's arrival rate is multiplied by
/// `rate_multiplier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStep {
    /// Fraction of the stream (in `[0, 1]`) generated at the base rates.
    pub at_fraction: f64,
    /// Rate multiplier applied from that point on (≥ 1 steps the load up).
    pub rate_multiplier: f64,
}

/// Generates the open-loop stream of [`generate_query_stream`] with an
/// optional mid-stream [`LoadStep`].
///
/// The step divides the sampled inter-arrival delays by the multiplier
/// rather than re-parameterising the distribution, so per-event RNG
/// consumption is unchanged; the post-step interleaving of consumers can
/// still differ from the unstepped stream (denser arrivals pop in a
/// different merge order). Techniques compared on the *same* generated
/// stream see byte-identical queries either way.
#[must_use]
pub fn generate_stepped_stream(
    consumers: &[ConsumerSpec],
    workload: &WorkloadModel,
    count: usize,
    seed: u64,
    step: Option<LoadStep>,
) -> Vec<Query> {
    let Some(step) = step else {
        return generate_query_stream(consumers, workload, count, seed);
    };
    assert!(
        !consumers.is_empty(),
        "a stream needs at least one consumer"
    );
    let switch_at = ((count as f64) * step.at_fraction.clamp(0.0, 1.0)) as usize;
    let multiplier = if step.rate_multiplier.is_finite() && step.rate_multiplier > 0.0 {
        step.rate_multiplier
    } else {
        1.0
    };

    // Mirror generate_query_stream's RNG split exactly.
    let master = SimRng::new(seed);
    let mut arrival_rng = master.derive(1);
    let mut workload_rng = master.derive(3);
    let mut ids = IdGenerator::new();

    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(VirtualTime, usize)>> =
        std::collections::BinaryHeap::new();
    for (position, spec) in consumers.iter().enumerate() {
        let delay = workload.next_arrival(spec, &mut arrival_rng);
        heap.push(std::cmp::Reverse((VirtualTime::ZERO + delay, position)));
    }

    let mut stream = Vec::with_capacity(count);
    while stream.len() < count {
        let std::cmp::Reverse((at, position)) = heap.pop().expect("heap holds every consumer");
        let spec = &consumers[position];
        stream.push(workload.next_query(ids.next_query(), spec, at, &mut workload_rng));
        let mut delay = workload.next_arrival(spec, &mut arrival_rng);
        if stream.len() >= switch_at {
            delay = sbqa_types::Duration::new(delay.seconds() / multiplier);
        }
        heap.push(std::cmp::Reverse((at + delay, position)));
    }
    stream
}

/// A deterministic oracle with **persistent mutual preferences** and
/// **load-blended provider intentions**.
///
/// * The consumer's intention towards a provider is a pure seeded hash of
///   `(consumer, provider)` in `[-1, 1]` — the same pair always answers the
///   same value, so preferences concentrate rather than wash out.
/// * The provider's intention blends its persistent preference for the
///   issuing consumer with a load term
///   ([`load_to_intention`]) read
///   from the experiment's utilization mirror: an overloaded provider wants
///   nothing, however much it likes the consumer.
///
/// The utilization mirror sits behind a [`RefCell`], which keeps the oracle
/// single-threaded — it drives the synchronous [`ShardedMediator`] facade
/// (the right front for satisfaction experiments, where wall-clock
/// interleaving is noise).
#[derive(Debug)]
pub struct AdaptiveOracle {
    seed: u64,
    /// Weight of the persistent preference in the provider blend, in
    /// `[0, 1]`; the remainder is the load term.
    preference_weight: f64,
    /// Backlog (virtual seconds) a provider considers acceptable.
    acceptable_backlog: f64,
    // sbqa-lint: allow(hash-collection, "per-provider utilization point lookups; never iterated")
    utilization: RefCell<HashMap<ProviderId, f64>>,
}

impl AdaptiveOracle {
    /// Creates an oracle for the given seed and provider blend.
    #[must_use]
    pub fn new(seed: u64, preference_weight: f64, acceptable_backlog: f64) -> Self {
        Self {
            seed,
            preference_weight: preference_weight.clamp(0.0, 1.0),
            acceptable_backlog: if acceptable_backlog.is_finite() && acceptable_backlog > 0.0 {
                acceptable_backlog
            } else {
                1.0
            },
            // sbqa-lint: allow(hash-collection, "per-provider utilization point lookups; never iterated")
            utilization: RefCell::new(HashMap::new()),
        }
    }

    /// Mirrors a provider's current backlog (virtual seconds of queued
    /// work) into the oracle.
    pub fn set_utilization(&self, provider: ProviderId, backlog_seconds: f64) {
        self.utilization
            .borrow_mut()
            .insert(provider, backlog_seconds.max(0.0));
    }

    fn hash_unit(&self, salt: u64, a: u64, b: u64) -> f64 {
        let mut x = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

impl IntentionOracle for AdaptiveOracle {
    fn consumer_intention(&self, query: &Query, provider: ProviderId) -> Intention {
        Intention::new(self.hash_unit(0xC0A5, query.consumer.raw(), provider.raw()))
    }

    fn provider_intention(&self, provider: ProviderId, query: &Query) -> Intention {
        let preference =
            Intention::new(self.hash_unit(0xF00D, provider.raw(), query.consumer.raw()));
        let backlog = self
            .utilization
            .borrow()
            .get(&provider)
            .copied()
            .unwrap_or(0.0);
        let load = load_to_intention(backlog, self.acceptable_backlog);
        preference.blend(load, 1.0 - self.preference_weight)
    }
}

/// Configuration of one adaptive-`kn` experiment case.
#[derive(Debug, Clone)]
pub struct AdaptiveRunConfig {
    /// Number of mediator shards (1 compares against the paper's single
    /// logical mediator).
    pub shards: usize,
    /// Queries per batch: the adaptation cadence, the load-mirror refresh
    /// interval and the departure-check granularity.
    pub batch: usize,
    /// Seed for routing, allocator RNG and the oracle.
    pub seed: u64,
    /// The SbQA configuration (its `knbest_kn` is the *static* width the
    /// case runs with when `adaptive` is `None`).
    pub system: SystemConfig,
    /// Adaptive-`kn` controller knobs; `None` runs the static width.
    pub adaptive: Option<KnControllerConfig>,
    /// Weight of persistent preference vs load in provider intentions.
    pub preference_weight: f64,
    /// Backlog (virtual seconds) providers consider acceptable.
    pub acceptable_backlog: f64,
    /// Providers whose long-run satisfaction drops below this threshold
    /// depart for good (0 disables departures).
    pub departure_threshold: f64,
    /// Minimum proposals a provider must have seen before the departure
    /// rule may fire (shields cold-start windows).
    pub min_observations: usize,
    /// Run the departure rule every this many batches.
    pub departure_check_every: usize,
}

impl AdaptiveRunConfig {
    /// A baseline configuration around a system config and seed: single
    /// shard, batches of 128, preference-dominated providers, departures at
    /// the paper's provider threshold 0.35.
    #[must_use]
    pub fn new(system: SystemConfig, seed: u64) -> Self {
        Self {
            shards: 1,
            batch: 128,
            seed,
            system,
            adaptive: None,
            preference_weight: 0.6,
            acceptable_backlog: 3.0,
            departure_threshold: 0.35,
            min_observations: 20,
            departure_check_every: 4,
        }
    }

    /// Builder-style enablement of the adaptive controller.
    #[must_use]
    pub fn with_adaptive(mut self, controller: KnControllerConfig) -> Self {
        self.adaptive = Some(controller);
        self
    }

    /// Builder-style static-width override (`kn`, keeping `k`).
    #[must_use]
    pub fn with_static_kn(mut self, kn: usize) -> Self {
        self.system = self.system.clone().with_knbest(self.system.knbest_k, kn);
        self.adaptive = None;
        self
    }
}

/// The measured outcome of one experiment case.
#[derive(Debug, Clone)]
pub struct AdaptiveRunReport {
    /// Mediated/starved tallies over the whole stream.
    pub total: BatchReport,
    /// Mean per-query consumer satisfaction `δs(c, q)` over **every** query
    /// of the stream — starved queries contribute 0, exactly as
    /// Definition 1 treats missing results. This is the aggregate the
    /// static-vs-adaptive comparison ranks by.
    pub mean_query_satisfaction: f64,
    /// The same mean restricted to queries issued at or after the load
    /// step's virtual switch time (0 when no query falls there).
    pub post_step_satisfaction: f64,
    /// Providers that departed out of dissatisfaction.
    pub departed: usize,
    /// Per-batch mean `δs(c, q)` over virtual time.
    pub satisfaction_series: TimeSeries,
    /// Mean exploration width over virtual time (constant for static runs).
    pub kn_series: TimeSeries,
    /// Mean gap EWMA across shards and classes over virtual time (empty for
    /// static runs — the signal lives in the controller).
    pub gap_series: TimeSeries,
    /// Every shard's controller trajectory (empty for static runs).
    pub kn_trails: Vec<Vec<KnAdjustment>>,
    /// Mean width across classes and shards at the end of the run.
    pub final_mean_kn: f64,
}

/// Runs one case: registers the population, drives the stream through a
/// synchronous [`ShardedMediator`] batch by batch, mirroring allocation
/// backlog into provider load (and intentions) between batches and applying
/// the dissatisfaction-departure rule.
///
/// `step_at` is the virtual time of the load step (used only to split the
/// reported satisfaction means); pass `None` when the stream has no step.
pub fn run_adaptive_case(
    config: &AdaptiveRunConfig,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[Query],
    step_at: Option<VirtualTime>,
) -> SbqaResult<AdaptiveRunReport> {
    let mut service = ShardedMediator::sbqa(config.system.clone(), config.seed, config.shards)?;
    for spec in providers {
        service.register_provider(spec.id, spec.capabilities, spec.capacity);
    }
    for spec in consumers {
        service.register_consumer(spec.id);
    }
    if let Some(controller) = config.adaptive {
        service.enable_adaptive_kn(controller);
    }

    let oracle = AdaptiveOracle::new(
        config.seed,
        config.preference_weight,
        config.acceptable_backlog,
    );

    // The load mirror, aligned with `providers` (spec order — the
    // deterministic iteration order for every per-provider sweep).
    // sbqa-lint: allow(hash-collection, "point lookups only; sweeps iterate the providers spec Vec, not this map")
    let index_of: HashMap<ProviderId, usize> = providers
        .iter()
        .enumerate()
        .map(|(i, spec)| (spec.id, i))
        .collect();
    let mut backlog = vec![0.0f64; providers.len()];
    let mut departed = vec![false; providers.len()];
    let mut departed_count = 0usize;
    let mut last_drain = VirtualTime::ZERO;

    let mut total = BatchReport::default();
    let mut satisfaction_sum = 0.0;
    let mut satisfaction_count = 0usize;
    let mut post_step_sum = 0.0;
    let mut post_step_count = 0usize;
    let mut satisfaction_series = TimeSeries::new("consumer_query_satisfaction");
    let mut kn_series = TimeSeries::new("mean_kn");
    let mut gap_series = TimeSeries::new("gap_ewma");
    let mut consumer_view: Vec<(ProviderId, Intention)> = Vec::new();

    for (batch_index, batch) in stream.chunks(config.batch.max(1)).enumerate() {
        let now = batch.first().map_or(last_drain, |q| q.issued_at);

        // 1. Drain backlogs for the elapsed virtual time and refresh the
        //    mirror on both sides (oracle + registries).
        let elapsed = (now - last_drain).seconds().max(0.0);
        last_drain = now;
        for (i, spec) in providers.iter().enumerate() {
            if departed[i] {
                continue;
            }
            backlog[i] = (backlog[i] - elapsed).max(0.0);
            oracle.set_utilization(spec.id, backlog[i]);
            service.update_provider_load(spec.id, backlog[i], backlog[i].ceil() as usize)?;
        }

        // 2. Mediate the batch, crediting winners with the query's service
        //    time and scoring every query's Definition-1 satisfaction.
        let mut batch_satisfaction = 0.0;
        let report = service.submit_batch(batch, &oracle, |_, query, result| {
            let mut query_satisfaction = 0.0;
            if let Ok(decision) = result {
                decision.consumer_view_into(&mut consumer_view);
                let gained: f64 = consumer_view
                    .iter()
                    .map(|(_, intention)| intention.to_unit().value())
                    .sum();
                query_satisfaction = gained / query.replication.max(1) as f64;
                for provider in &decision.selected {
                    if let Some(&i) = index_of.get(provider) {
                        backlog[i] +=
                            query.work_units / providers[i].capacity.max(f64::MIN_POSITIVE);
                    }
                }
            }
            batch_satisfaction += query_satisfaction;
            satisfaction_sum += query_satisfaction;
            satisfaction_count += 1;
            if step_at.is_some_and(|at| query.issued_at >= at) {
                post_step_sum += query_satisfaction;
                post_step_count += 1;
            }
        });
        total.merge(&report);

        if !batch.is_empty() {
            satisfaction_series.push(now, batch_satisfaction / batch.len() as f64);
            kn_series.push(now, mean_kn(&service, &config.system));
            if let Some(gap) = mean_gap_ewma(&service) {
                gap_series.push(now, gap);
            }
        }

        // 3. Dissatisfaction departures, checked at a fixed batch cadence.
        if config.departure_threshold > 0.0
            && (batch_index + 1) % config.departure_check_every.max(1) == 0
        {
            for (i, spec) in providers.iter().enumerate() {
                if departed[i] {
                    continue;
                }
                let shard = service.router().shard_of_provider(spec.id);
                let tracker = service.satisfaction(shard).provider(spec.id);
                let Some(tracker) = tracker else { continue };
                if tracker.observed_proposals() >= config.min_observations
                    && tracker.satisfaction().value() < config.departure_threshold
                {
                    departed[i] = true;
                    departed_count += 1;
                    service.set_provider_online(spec.id, false)?;
                }
            }
        }
    }

    let final_mean_kn = mean_kn(&service, &config.system);
    let kn_trails = service
        .shards()
        .map(sbqa_service::MediatorShard::kn_trail)
        .collect();

    Ok(AdaptiveRunReport {
        total,
        mean_query_satisfaction: if satisfaction_count == 0 {
            0.0
        } else {
            satisfaction_sum / satisfaction_count as f64
        },
        post_step_satisfaction: if post_step_count == 0 {
            0.0
        } else {
            post_step_sum / post_step_count as f64
        },
        departed: departed_count,
        satisfaction_series,
        kn_series,
        gap_series,
        kn_trails,
        final_mean_kn,
    })
}

/// Mean gap EWMA across every shard's adapted classes, if any controller
/// has folded at least one round.
fn mean_gap_ewma(service: &ShardedMediator) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for shard in service.shards() {
        if let Some(controller) = shard.mediator().adaptive_kn() {
            for (class, _) in controller.class_widths() {
                if let Some(ewma) = controller.gap_ewma(class) {
                    sum += ewma;
                    count += 1;
                }
            }
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Mean exploration width across every shard's contacted classes; the
/// static `knbest_kn` when no controller has observed anything yet.
fn mean_kn(service: &ShardedMediator, system: &SystemConfig) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for shard in service.shards() {
        if let Some(controller) = shard.mediator().adaptive_kn() {
            for (_, kn) in controller.class_widths() {
                sum += kn as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        return system.knbest_kn as f64;
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, QueryId};

    fn consumers(n: u64) -> Vec<ConsumerSpec> {
        (0..n)
            .map(|c| {
                ConsumerSpec::new(
                    ConsumerId::new(c),
                    Capability::new((c % 2) as u8),
                    4.0,
                    0.5,
                    1,
                    ConsumerProfile::default(),
                )
            })
            .collect()
    }

    fn providers(n: u64) -> Vec<ProviderSpec> {
        (0..n)
            .map(|p| {
                ProviderSpec::new(
                    ProviderId::new(1_000 + p),
                    CapabilitySet::singleton(Capability::new((p % 2) as u8)),
                    1.0,
                    ProviderProfile::default(),
                )
            })
            .collect()
    }

    #[test]
    fn stepped_stream_without_step_matches_the_plain_generator() {
        let consumers = consumers(3);
        let workload = WorkloadModel::default();
        let plain = generate_query_stream(&consumers, &workload, 300, 11);
        let stepped = generate_stepped_stream(&consumers, &workload, 300, 11, None);
        assert_eq!(plain, stepped);
    }

    #[test]
    fn load_step_compresses_arrivals_after_the_switch() {
        let consumers = consumers(3);
        let workload = WorkloadModel::default();
        let step = LoadStep {
            at_fraction: 0.5,
            rate_multiplier: 4.0,
        };
        let stream = generate_stepped_stream(&consumers, &workload, 2_000, 7, Some(step));
        assert_eq!(stream.len(), 2_000);
        // Ids are minted in arrival order, like the unstepped generator.
        assert!(stream
            .iter()
            .enumerate()
            .all(|(i, q)| q.id == QueryId::new(i as u64)));
        // The second half arrives ~4x denser.
        let span =
            |qs: &[Query]| (qs.last().unwrap().issued_at - qs.first().unwrap().issued_at).seconds();
        let first = span(&stream[..1_000]);
        let second = span(&stream[1_000..]);
        assert!(
            second < first / 2.0,
            "post-step half spans {second}s vs {first}s before"
        );
        // Virtual time still advances monotonically.
        assert!(stream.windows(2).all(|w| w[0].issued_at <= w[1].issued_at));
    }

    #[test]
    fn oracle_preferences_are_persistent_and_load_erodes_willingness() {
        let oracle = AdaptiveOracle::new(5, 0.5, 2.0);
        let q = |c: u64| {
            Query::builder(
                QueryId::new(c * 100),
                ConsumerId::new(c),
                Capability::new(0),
            )
            .build()
        };
        let p = ProviderId::new(9);

        // Persistent: two different queries from the same consumer see the
        // same mutual preference.
        assert_eq!(
            oracle.consumer_intention(&q(1), p),
            oracle.consumer_intention(
                &Query::builder(QueryId::new(777), ConsumerId::new(1), Capability::new(0)).build(),
                p
            )
        );
        let idle = oracle.provider_intention(p, &q(1));
        oracle.set_utilization(p, 1e9);
        let slammed = oracle.provider_intention(p, &q(1));
        assert!(slammed < idle, "load must erode willingness");
        // With weight 0.5 the load term has real authority: the drop is at
        // least half the idle-vs-refusing swing.
        assert!((idle.value() - slammed.value()) > 0.4);
    }

    #[test]
    fn adaptive_case_runs_deterministically() {
        let providers = providers(24);
        let consumers = consumers(4);
        let workload = WorkloadModel::default();
        let stream = generate_stepped_stream(
            &consumers,
            &workload,
            600,
            13,
            Some(LoadStep {
                at_fraction: 0.5,
                rate_multiplier: 3.0,
            }),
        );
        let step_at = Some(stream[300].issued_at);
        let config = AdaptiveRunConfig::new(SystemConfig::default().with_knbest(12, 4), 13)
            .with_adaptive(KnControllerConfig {
                initial_kn: 4,
                min_kn: 2,
                max_kn: 10,
                ..KnControllerConfig::default()
            });

        let a = run_adaptive_case(&config, &providers, &consumers, &stream, step_at).unwrap();
        let b = run_adaptive_case(&config, &providers, &consumers, &stream, step_at).unwrap();
        assert_eq!(a.total, b.total);
        assert_eq!(a.mean_query_satisfaction, b.mean_query_satisfaction);
        assert_eq!(a.departed, b.departed);
        assert_eq!(a.kn_trails, b.kn_trails);
        assert_eq!(a.final_mean_kn, b.final_mean_kn);

        assert_eq!(a.total.submitted(), 600);
        assert!(a.mean_query_satisfaction > 0.0);
        assert_eq!(a.satisfaction_series.len(), a.kn_series.len());
        assert_eq!(a.kn_trails.len(), 1, "one trail per shard");
    }

    #[test]
    fn static_case_keeps_kn_flat_and_records_no_trail() {
        let providers = providers(24);
        let consumers = consumers(4);
        let stream = generate_stepped_stream(&consumers, &WorkloadModel::default(), 400, 21, None);
        let config = AdaptiveRunConfig::new(SystemConfig::default().with_knbest(12, 6), 21);
        let report = run_adaptive_case(&config, &providers, &consumers, &stream, None).unwrap();
        assert!(report.kn_trails.iter().all(Vec::is_empty));
        assert_eq!(report.final_mean_kn, 6.0);
        assert!(report
            .kn_series
            .points()
            .iter()
            .all(|p| (p.value - 6.0).abs() < 1e-12));
        assert_eq!(report.post_step_satisfaction, 0.0, "no step configured");
    }

    #[test]
    fn harsh_departure_threshold_sheds_providers() {
        let providers = providers(16);
        let consumers = consumers(4);
        let stream = generate_stepped_stream(&consumers, &WorkloadModel::default(), 1_200, 3, None);
        let mut config = AdaptiveRunConfig::new(SystemConfig::default().with_knbest(12, 8), 3);
        config.departure_threshold = 0.9; // nearly everyone is "dissatisfied"
        config.min_observations = 10;
        let report = run_adaptive_case(&config, &providers, &consumers, &stream, None).unwrap();
        assert!(report.departed > 0, "harsh threshold must shed providers");
        // Departures never exceed the population.
        assert!(report.departed <= 16);
    }
}
