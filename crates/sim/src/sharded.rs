//! Optional sharded runner path: open-loop streams for the mediation
//! service.
//!
//! The event-driven [`Simulation`](crate::runner::Simulation) measures the
//! *system* (satisfaction, departures, response times in virtual seconds)
//! around a single mediator. This module measures the *mediator itself* at
//! scale: it generates a deterministic open-loop arrival stream from the
//! same [`WorkloadModel`] / [`ConsumerSpec`] vocabulary, then drives it —
//! identically — through either
//!
//! * a plain instrumented [`Mediator`]
//!   ([`run_single_mediator`], the single-mediator baseline), or
//! * the sharded [`MediationService`] ([`run_sharded_service`]): providers
//!   partitioned across `N` shards, producers enqueueing in configurable
//!   chunks, one mediation thread per shard.
//!
//! Both paths report mediated/starved tallies and wall-clock
//! ingest-to-decision latency percentiles, which is what the
//! `scenario_sharded` harness sweeps over shard counts. Decisions on the
//! single-shard service path are byte-identical to the baseline (the
//! service crate's determinism tests pin this); with more shards the stream
//! stays byte-stable per seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use sbqa_core::allocator::IntentionOracle;
use sbqa_core::{Mediator, SystemConfig};
use sbqa_service::{
    MediationService, MediatorShard, OutcomeRecord, ServiceReport, ShardReport, ShardedMediator,
};
use sbqa_types::{IdGenerator, Intention, ProviderId, Query, SbqaResult, VirtualTime};

use crate::consumer::ConsumerSpec;
use crate::provider::ProviderSpec;
use crate::rng::SimRng;
use crate::workload::WorkloadModel;

/// A deterministic, thread-safe intention oracle for service-level runs:
/// intentions are a pure hash of `(seed, consumer-or-provider id, query id)`
/// mapped into `[-1, 1]`, so both fronts consult identical values without
/// sharing any mutable participant state across shard threads.
#[derive(Debug, Clone, Copy)]
pub struct HashIntentions {
    seed: u64,
}

impl HashIntentions {
    /// Creates an oracle for the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn value(self, salt: u64, a: u64, b: u64) -> Intention {
        let mut x = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Map the top 53 bits into [-1, 1].
        Intention::new(((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0)
    }
}

impl IntentionOracle for HashIntentions {
    fn consumer_intention(&self, query: &Query, provider: ProviderId) -> Intention {
        self.value(0x5151, query.id.raw(), provider.raw())
    }

    fn provider_intention(&self, provider: ProviderId, query: &Query) -> Intention {
        self.value(0xACAC, provider.raw(), query.id.raw())
    }
}

/// Generates a deterministic open-loop arrival stream: every consumer emits
/// queries as an independent Poisson process (via the shared
/// [`WorkloadModel`]), merged in arrival order with ids minted in that
/// order — so the stream is sorted by `(issued_at, id)`, the natural batch
/// order both mediation fronts expect.
#[must_use]
pub fn generate_query_stream(
    consumers: &[ConsumerSpec],
    workload: &WorkloadModel,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    assert!(
        !consumers.is_empty(),
        "a stream needs at least one consumer"
    );
    let master = SimRng::new(seed);
    // Mirror the event-driven runner's stream split so the two paths stay
    // decorrelated the same way.
    let mut arrival_rng = master.derive(1);
    let mut workload_rng = master.derive(3);
    let mut ids = IdGenerator::new();

    // (next arrival time, consumer position), min-first.
    let mut heap: BinaryHeap<Reverse<(VirtualTime, usize)>> = BinaryHeap::new();
    for (position, spec) in consumers.iter().enumerate() {
        let delay = workload.next_arrival(spec, &mut arrival_rng);
        heap.push(Reverse((VirtualTime::ZERO + delay, position)));
    }

    let mut stream = Vec::with_capacity(count);
    while stream.len() < count {
        let Reverse((at, position)) = heap.pop().expect("heap holds every consumer");
        let spec = &consumers[position];
        stream.push(workload.next_query(ids.next_query(), spec, at, &mut workload_rng));
        let delay = workload.next_arrival(spec, &mut arrival_rng);
        heap.push(Reverse((at + delay, position)));
    }
    stream
}

/// Configuration of a sharded service run.
#[derive(Debug, Clone)]
pub struct ShardedRunConfig {
    /// Number of mediator shards.
    pub shards: usize,
    /// Producer-side chunk size: queries are enqueued in batches of this
    /// many (the ingest batch-size/latency knob).
    pub batch: usize,
    /// Seed for routing and the per-shard allocators.
    pub seed: u64,
    /// The SbQA configuration every shard runs.
    pub system: SystemConfig,
}

/// Registers the population and consumers, spawns the service, streams the
/// queries through it in `batch`-sized chunks and returns the merged report.
pub fn run_sharded_service(
    config: &ShardedRunConfig,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[Query],
) -> SbqaResult<ServiceReport> {
    let mut service = ShardedMediator::sbqa(config.system.clone(), config.seed, config.shards)?;
    for spec in providers {
        service.register_provider(spec.id, spec.capabilities, spec.capacity);
    }
    for spec in consumers {
        service.register_consumer(spec.id);
    }
    let oracle: Arc<dyn IntentionOracle + Send + Sync> = Arc::new(HashIntentions::new(config.seed));
    let mut running = MediationService::spawn(service, oracle);
    for chunk in stream.chunks(config.batch.max(1)) {
        running.enqueue_batch(chunk.iter().cloned());
    }
    Ok(running.finish())
}

/// The single-mediator baseline's results, shaped like one shard's view so
/// the harness prints both sides with the same columns.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Tallies and per-query latency of the lone mediator.
    pub shard: ShardReport,
    /// Every query's outcome, in stream order.
    pub outcomes: Vec<OutcomeRecord>,
    /// Wall-clock span of the whole drain.
    pub wall: std::time::Duration,
}

impl BaselineRun {
    /// Aggregate throughput in queries per wall-clock second.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.shard.report.submitted() as f64 / secs
    }
}

/// Drives the stream through one plain (instrumented, unrouted, unthreaded)
/// mediator — the baseline every shard count is compared against.
///
/// Latency semantics match the service side: in an open-loop run the whole
/// stream is available up front, so every query is stamped at **drain
/// start** and its sample spans availability → decision — including the
/// time it spent waiting behind earlier queries of the same drain, exactly
/// like the service's enqueue-stamped samples. (Per-mediation cost without
/// queueing is the registry bench's `mediate/*` series, not this report.)
pub fn run_single_mediator(
    system: SystemConfig,
    seed: u64,
    providers: &[ProviderSpec],
    consumers: &[ConsumerSpec],
    stream: &[Query],
) -> SbqaResult<BaselineRun> {
    let mut mediator = Mediator::sbqa(system, seed)?;
    for spec in providers {
        mediator.register_provider(spec.id, spec.capabilities, spec.capacity);
    }
    for spec in consumers {
        mediator.register_consumer(spec.id);
    }
    let mut shard = MediatorShard::new(0, mediator);
    let oracle = HashIntentions::new(seed);
    let mut outcomes = Vec::with_capacity(stream.len());
    // sbqa-lint: allow(wall-clock, "throughput measurement printed to the report only; allocation is driven by VirtualTime")
    let started = Instant::now();
    for query in stream {
        let (selected, starved) = match shard.submit_with_start(query, &oracle, started) {
            Ok(decision) => (decision.selected.clone(), false),
            Err(_) => (Vec::new(), true),
        };
        outcomes.push(OutcomeRecord {
            shard: 0,
            query: query.id,
            consumer: query.consumer,
            issued_at: query.issued_at,
            selected,
            starved,
            shed: false,
        });
    }
    let wall = started.elapsed();
    Ok(BaselineRun {
        shard: shard.report_snapshot(),
        outcomes,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, QueryId};

    fn consumers(n: u64) -> Vec<ConsumerSpec> {
        (0..n)
            .map(|c| {
                ConsumerSpec::new(
                    ConsumerId::new(c),
                    Capability::new((c % 3) as u8),
                    2.0,
                    1.0,
                    1,
                    ConsumerProfile::default(),
                )
            })
            .collect()
    }

    fn providers(n: u64) -> Vec<ProviderSpec> {
        (0..n)
            .map(|p| {
                ProviderSpec::new(
                    ProviderId::new(1_000 + p),
                    CapabilitySet::from_capabilities([
                        Capability::new((p % 3) as u8),
                        Capability::new(((p + 1) % 3) as u8),
                    ]),
                    1.0 + (p % 2) as f64,
                    ProviderProfile::default(),
                )
            })
            .collect()
    }

    #[test]
    fn stream_generation_is_deterministic_and_ordered() {
        let consumers = consumers(3);
        let workload = WorkloadModel::default();
        let a = generate_query_stream(&consumers, &workload, 200, 9);
        let b = generate_query_stream(&consumers, &workload, 200, 9);
        assert_eq!(a, b);
        let c = generate_query_stream(&consumers, &workload, 200, 10);
        assert_ne!(a, c);
        // Sorted by (issued_at, id); ids minted in arrival order.
        assert!(a
            .windows(2)
            .all(|w| (w[0].issued_at, w[0].id) <= (w[1].issued_at, w[1].id)));
        assert_eq!(a[0].id, QueryId::new(0));
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn hash_oracle_is_pure_and_in_range() {
        let oracle = HashIntentions::new(4);
        let q = Query::builder(QueryId::new(3), ConsumerId::new(1), Capability::new(0)).build();
        let a = oracle.consumer_intention(&q, ProviderId::new(8));
        let b = oracle.consumer_intention(&q, ProviderId::new(8));
        assert_eq!(a, b);
        // Different providers see different values (overwhelmingly likely).
        let c = oracle.consumer_intention(&q, ProviderId::new(9));
        assert_ne!(a, c);
        assert!((-1.0..=1.0).contains(&a.value()));
        assert!((-1.0..=1.0).contains(&oracle.provider_intention(ProviderId::new(8), &q).value()));
    }

    #[test]
    fn single_shard_service_matches_the_baseline() {
        let providers = providers(30);
        let consumers = consumers(3);
        let stream = generate_query_stream(&consumers, &WorkloadModel::default(), 150, 42);
        let system = SystemConfig::default().with_knbest(10, 3);

        let baseline =
            run_single_mediator(system.clone(), 42, &providers, &consumers, &stream).unwrap();
        let config = ShardedRunConfig {
            shards: 1,
            batch: 32,
            seed: 42,
            system,
        };
        let report = run_sharded_service(&config, &providers, &consumers, &stream).unwrap();

        assert_eq!(report.total, baseline.shard.report);
        assert_eq!(report.outcomes.len(), baseline.outcomes.len());
        for (service_outcome, baseline_outcome) in report.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(service_outcome.query, baseline_outcome.query);
            assert_eq!(service_outcome.selected, baseline_outcome.selected);
            assert_eq!(service_outcome.starved, baseline_outcome.starved);
        }
    }

    #[test]
    fn multi_shard_service_accounts_for_every_query() {
        let providers = providers(40);
        let consumers = consumers(4);
        let stream = generate_query_stream(&consumers, &WorkloadModel::default(), 200, 7);
        let config = ShardedRunConfig {
            shards: 4,
            batch: 16,
            seed: 7,
            system: SystemConfig::default().with_knbest(8, 2),
        };
        let report = run_sharded_service(&config, &providers, &consumers, &stream).unwrap();
        assert_eq!(report.total.submitted(), 200);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.aggregate_latency().count(), 200);
        // Byte-stability across runs.
        let again = run_sharded_service(&config, &providers, &consumers, &stream).unwrap();
        assert_eq!(report.outcomes, again.outcomes);
    }
}
