//! Query generation.
//!
//! The workload model turns a [`ConsumerSpec`]
//! into a stream of queries: exponential inter-arrival times (a Poisson
//! process at the consumer's rate), exponentially-distributed work sizes
//! around the consumer's mean, a Short/Medium/Long class mix, and —
//! when the consumer declares extra capability classes — a configurable mix
//! of single- and multi-capability requirements (`All`/`Any` semantics).

use serde::{Deserialize, Serialize};

use sbqa_types::{CapabilityRequirement, Duration, Query, QueryClass, QueryId, VirtualTime};

use crate::consumer::ConsumerSpec;
use crate::rng::SimRng;

/// Probabilities of each query class in the generated mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Probability of a short query.
    pub short_fraction: f64,
    /// Probability of a long query (the remainder is medium).
    pub long_fraction: f64,
    /// Lower bound on sampled work sizes, to avoid zero-length queries.
    pub min_work_units: f64,
    /// Probability that a query widens its requirement to the consumer's
    /// base classes *plus* its [`extra_capabilities`]. Only applies to
    /// consumers that declare extra classes; at the default of `0.0` no RNG
    /// is consumed and every query carries the consumer's base requirement,
    /// so existing single-capability workloads are byte-identical.
    ///
    /// [`extra_capabilities`]: crate::consumer::ConsumerSpec::extra_capabilities
    pub multi_capability_fraction: f64,
    /// Among widened queries, the probability that the requirement is forced
    /// to disjunctive (`Any`) semantics; otherwise a widened query keeps its
    /// consumer's base semantics (conjunctive bases widen to `All`,
    /// disjunctive bases to `Any` — widening never silently turns a
    /// disjunctive consumer's queries into conjunctions). At `0.0` no RNG is
    /// consumed for the choice.
    pub any_semantics_fraction: f64,
}

impl Default for WorkloadModel {
    fn default() -> Self {
        Self {
            short_fraction: 0.25,
            long_fraction: 0.25,
            min_work_units: 0.05,
            multi_capability_fraction: 0.0,
            any_semantics_fraction: 0.0,
        }
    }
}

impl WorkloadModel {
    /// A model that only generates medium queries of exactly the consumer's
    /// mean size — useful for tests that need predictable service times.
    #[must_use]
    pub const fn deterministic() -> Self {
        Self {
            short_fraction: 0.0,
            long_fraction: 0.0,
            min_work_units: 0.0,
            multi_capability_fraction: 0.0,
            any_semantics_fraction: 0.0,
        }
    }

    /// Builder-style override of the multi-capability query mix: `multi` is
    /// the probability that a query widens to the consumer's extra classes,
    /// `any` the probability that a widened query uses `Any` semantics.
    #[must_use]
    pub fn with_multi_capability_mix(mut self, multi: f64, any: f64) -> Self {
        self.multi_capability_fraction = multi.clamp(0.0, 1.0);
        self.any_semantics_fraction = any.clamp(0.0, 1.0);
        self
    }

    /// Samples the delay until a consumer's next query.
    #[must_use]
    pub fn next_arrival(&self, spec: &ConsumerSpec, rng: &mut SimRng) -> Duration {
        Duration::new(rng.exponential(spec.arrival_rate))
    }

    /// Samples a query class according to the configured mix.
    #[must_use]
    pub fn sample_class(&self, rng: &mut SimRng) -> QueryClass {
        let u = rng.uniform();
        let short = self.short_fraction.clamp(0.0, 1.0);
        let long = self.long_fraction.clamp(0.0, 1.0 - short);
        if u < short {
            QueryClass::Short
        } else if u < short + long {
            QueryClass::Long
        } else {
            QueryClass::Medium
        }
    }

    /// Samples the capability requirement of a consumer's next query.
    ///
    /// Consumers without extra capability classes (and workloads with the
    /// mix disabled) always get the base requirement *without consuming any
    /// randomness*, which keeps pre-existing single-capability workloads
    /// byte-identical per seed.
    #[must_use]
    pub fn sample_requirement(
        &self,
        spec: &ConsumerSpec,
        rng: &mut SimRng,
    ) -> CapabilityRequirement {
        if self.multi_capability_fraction <= 0.0 || spec.extra_capabilities.is_empty() {
            return spec.requirement;
        }
        if rng.uniform() >= self.multi_capability_fraction {
            return spec.requirement;
        }
        let widened = spec.requirement.classes().union(spec.extra_capabilities);
        let force_any =
            self.any_semantics_fraction > 0.0 && rng.uniform() < self.any_semantics_fraction;
        if force_any || !spec.requirement.is_conjunctive() {
            CapabilityRequirement::Any(widened)
        } else {
            CapabilityRequirement::All(widened)
        }
    }

    /// Builds the next query for a consumer.
    #[must_use]
    pub fn next_query(
        &self,
        id: QueryId,
        spec: &ConsumerSpec,
        now: VirtualTime,
        rng: &mut SimRng,
    ) -> Query {
        let work = if self.short_fraction == 0.0
            && self.long_fraction == 0.0
            && self.min_work_units == 0.0
        {
            spec.mean_work_units
        } else {
            rng.exponential(1.0 / spec.mean_work_units)
                .max(self.min_work_units)
        };
        Query::requiring(id, spec.id, self.sample_requirement(spec, rng))
            .replication(spec.replication)
            .work_units(work)
            .class(self.sample_class(rng))
            .issued_at(now)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::ConsumerProfile;
    use sbqa_types::{Capability, ConsumerId};

    fn spec(rate: f64, work: f64) -> ConsumerSpec {
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(3),
            rate,
            work,
            2,
            ConsumerProfile::default(),
        )
    }

    #[test]
    fn deterministic_model_reproduces_mean_work() {
        let model = WorkloadModel::deterministic();
        let mut rng = SimRng::new(1);
        let q = model.next_query(
            QueryId::new(1),
            &spec(1.0, 3.0),
            VirtualTime::new(5.0),
            &mut rng,
        );
        assert_eq!(q.work_units, 3.0);
        assert_eq!(q.class, QueryClass::Medium);
        assert_eq!(q.replication, 2);
        assert_eq!(
            q.required,
            sbqa_types::CapabilityRequirement::single(Capability::new(3))
        );
        assert_eq!(q.issued_at, VirtualTime::new(5.0));
    }

    #[test]
    fn arrival_rate_controls_mean_interarrival() {
        let model = WorkloadModel::default();
        let mut rng = SimRng::new(2);
        let s = spec(4.0, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| model.next_arrival(&s, &mut rng).seconds())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean inter-arrival {mean}");
    }

    #[test]
    fn sampled_work_respects_minimum_and_mean() {
        let model = WorkloadModel::default();
        let mut rng = SimRng::new(3);
        let s = spec(1.0, 2.0);
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let q = model.next_query(QueryId::new(i), &s, VirtualTime::ZERO, &mut rng);
            assert!(q.work_units >= model.min_work_units * QueryClass::Short.work_factor());
            sum += q.work_units;
        }
        // Mean of the exponential is 2.0, scaled by the class mix
        // (0.25·0.4 + 0.5·1.0 + 0.25·1.6 = 1.0), so the overall mean stays ≈ 2.
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean work {mean}");
    }

    #[test]
    fn default_mix_never_widens_requirements_or_consumes_rng() {
        let with_extras = spec(1.0, 1.0)
            .with_extra_capabilities(sbqa_types::CapabilitySet::singleton(Capability::new(7)));
        let plain = spec(1.0, 1.0);
        let model = WorkloadModel::default();

        // Identical RNG streams must yield identical queries whether or not
        // the consumer declares extras, because the disabled mix draws
        // nothing: pre-existing workloads stay byte-identical per seed.
        let mut rng_a = SimRng::new(11);
        let mut rng_b = SimRng::new(11);
        for i in 0..200u64 {
            let qa = model.next_query(QueryId::new(i), &with_extras, VirtualTime::ZERO, &mut rng_a);
            let qb = model.next_query(QueryId::new(i), &plain, VirtualTime::ZERO, &mut rng_b);
            assert_eq!(qa.required, with_extras.requirement);
            assert_eq!(qa.work_units, qb.work_units);
            assert_eq!(qa.class, qb.class);
        }
    }

    #[test]
    fn multi_capability_mix_widens_with_configured_semantics() {
        use sbqa_types::{CapabilityRequirement, CapabilitySet};

        let extras = CapabilitySet::from_capabilities([Capability::new(7), Capability::new(9)]);
        let s = spec(1.0, 1.0).with_extra_capabilities(extras);
        let widened = s.requirement.classes().union(extras);
        let model = WorkloadModel::default().with_multi_capability_mix(0.6, 0.5);
        let mut rng = SimRng::new(5);

        let n = 20_000;
        let mut single = 0usize;
        let mut all = 0usize;
        let mut any = 0usize;
        for i in 0..n {
            let q = model.next_query(QueryId::new(i as u64), &s, VirtualTime::ZERO, &mut rng);
            match q.required {
                req if req == s.requirement => single += 1,
                CapabilityRequirement::All(set) => {
                    assert_eq!(set, widened);
                    all += 1;
                }
                CapabilityRequirement::Any(set) => {
                    assert_eq!(set, widened);
                    any += 1;
                }
            }
        }
        // 40% single, 30% All-widened, 30% Any-widened (±2 points).
        assert!(
            (single as f64 / n as f64 - 0.4).abs() < 0.02,
            "single {single}"
        );
        assert!((all as f64 / n as f64 - 0.3).abs() < 0.02, "all {all}");
        assert!((any as f64 / n as f64 - 0.3).abs() < 0.02, "any {any}");
    }

    #[test]
    fn widening_preserves_a_disjunctive_base() {
        use sbqa_types::{CapabilityRequirement, CapabilitySet};

        // A consumer whose base requirement is already disjunctive: widened
        // queries must stay disjunctive (never silently flip to `All`, which
        // would be strictly *stricter* than the base requirement).
        let base = CapabilityRequirement::Any(CapabilitySet::from_capabilities([
            Capability::new(1),
            Capability::new(2),
        ]));
        let extras = CapabilitySet::singleton(Capability::new(3));
        let s = spec(1.0, 1.0)
            .with_requirement(base)
            .with_extra_capabilities(extras);
        let widened = base.classes().union(extras);
        // any_semantics_fraction 0.0: the base semantics decide alone.
        let model = WorkloadModel::default().with_multi_capability_mix(1.0, 0.0);
        let mut rng = SimRng::new(9);
        for i in 0..200u64 {
            let q = model.next_query(QueryId::new(i), &s, VirtualTime::ZERO, &mut rng);
            assert_eq!(q.required, CapabilityRequirement::Any(widened));
        }
    }

    #[test]
    fn mix_fractions_are_clamped() {
        let model = WorkloadModel::default().with_multi_capability_mix(7.0, -3.0);
        assert_eq!(model.multi_capability_fraction, 1.0);
        assert_eq!(model.any_semantics_fraction, 0.0);
    }

    #[test]
    fn class_mix_follows_configured_fractions() {
        let model = WorkloadModel {
            short_fraction: 0.5,
            long_fraction: 0.3,
            min_work_units: 0.01,
            ..WorkloadModel::default()
        };
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let mut short = 0;
        let mut long = 0;
        for _ in 0..n {
            match model.sample_class(&mut rng) {
                QueryClass::Short => short += 1,
                QueryClass::Long => long += 1,
                QueryClass::Medium => {}
            }
        }
        assert!((short as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((long as f64 / n as f64 - 0.3).abs() < 0.02);
    }
}
