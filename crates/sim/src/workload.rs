//! Query generation.
//!
//! The workload model turns a [`ConsumerSpec`](crate::consumer::ConsumerSpec)
//! into a stream of queries: exponential inter-arrival times (a Poisson
//! process at the consumer's rate), exponentially-distributed work sizes
//! around the consumer's mean, and a Short/Medium/Long class mix.

use serde::{Deserialize, Serialize};

use sbqa_types::{Duration, Query, QueryClass, QueryId, VirtualTime};

use crate::consumer::ConsumerSpec;
use crate::rng::SimRng;

/// Probabilities of each query class in the generated mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Probability of a short query.
    pub short_fraction: f64,
    /// Probability of a long query (the remainder is medium).
    pub long_fraction: f64,
    /// Lower bound on sampled work sizes, to avoid zero-length queries.
    pub min_work_units: f64,
}

impl Default for WorkloadModel {
    fn default() -> Self {
        Self {
            short_fraction: 0.25,
            long_fraction: 0.25,
            min_work_units: 0.05,
        }
    }
}

impl WorkloadModel {
    /// A model that only generates medium queries of exactly the consumer's
    /// mean size — useful for tests that need predictable service times.
    #[must_use]
    pub const fn deterministic() -> Self {
        Self {
            short_fraction: 0.0,
            long_fraction: 0.0,
            min_work_units: 0.0,
        }
    }

    /// Samples the delay until a consumer's next query.
    #[must_use]
    pub fn next_arrival(&self, spec: &ConsumerSpec, rng: &mut SimRng) -> Duration {
        Duration::new(rng.exponential(spec.arrival_rate))
    }

    /// Samples a query class according to the configured mix.
    #[must_use]
    pub fn sample_class(&self, rng: &mut SimRng) -> QueryClass {
        let u = rng.uniform();
        let short = self.short_fraction.clamp(0.0, 1.0);
        let long = self.long_fraction.clamp(0.0, 1.0 - short);
        if u < short {
            QueryClass::Short
        } else if u < short + long {
            QueryClass::Long
        } else {
            QueryClass::Medium
        }
    }

    /// Builds the next query for a consumer.
    #[must_use]
    pub fn next_query(
        &self,
        id: QueryId,
        spec: &ConsumerSpec,
        now: VirtualTime,
        rng: &mut SimRng,
    ) -> Query {
        let work = if self.short_fraction == 0.0
            && self.long_fraction == 0.0
            && self.min_work_units == 0.0
        {
            spec.mean_work_units
        } else {
            rng.exponential(1.0 / spec.mean_work_units)
                .max(self.min_work_units)
        };
        Query::builder(id, spec.id, spec.capability)
            .replication(spec.replication)
            .work_units(work)
            .class(self.sample_class(rng))
            .issued_at(now)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::ConsumerProfile;
    use sbqa_types::{Capability, ConsumerId};

    fn spec(rate: f64, work: f64) -> ConsumerSpec {
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(3),
            rate,
            work,
            2,
            ConsumerProfile::default(),
        )
    }

    #[test]
    fn deterministic_model_reproduces_mean_work() {
        let model = WorkloadModel::deterministic();
        let mut rng = SimRng::new(1);
        let q = model.next_query(
            QueryId::new(1),
            &spec(1.0, 3.0),
            VirtualTime::new(5.0),
            &mut rng,
        );
        assert_eq!(q.work_units, 3.0);
        assert_eq!(q.class, QueryClass::Medium);
        assert_eq!(q.replication, 2);
        assert_eq!(q.required_capability, Capability::new(3));
        assert_eq!(q.issued_at, VirtualTime::new(5.0));
    }

    #[test]
    fn arrival_rate_controls_mean_interarrival() {
        let model = WorkloadModel::default();
        let mut rng = SimRng::new(2);
        let s = spec(4.0, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| model.next_arrival(&s, &mut rng).seconds())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean inter-arrival {mean}");
    }

    #[test]
    fn sampled_work_respects_minimum_and_mean() {
        let model = WorkloadModel::default();
        let mut rng = SimRng::new(3);
        let s = spec(1.0, 2.0);
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let q = model.next_query(QueryId::new(i), &s, VirtualTime::ZERO, &mut rng);
            assert!(q.work_units >= model.min_work_units * QueryClass::Short.work_factor());
            sum += q.work_units;
        }
        // Mean of the exponential is 2.0, scaled by the class mix
        // (0.25·0.4 + 0.5·1.0 + 0.25·1.6 = 1.0), so the overall mean stays ≈ 2.
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean work {mean}");
    }

    #[test]
    fn class_mix_follows_configured_fractions() {
        let model = WorkloadModel {
            short_fraction: 0.5,
            long_fraction: 0.3,
            min_work_units: 0.01,
        };
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let mut short = 0;
        let mut long = 0;
        for _ in 0..n {
            match model.sample_class(&mut rng) {
                QueryClass::Short => short += 1,
                QueryClass::Long => long += 1,
                QueryClass::Medium => {}
            }
        }
        assert!((short as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((long as f64 / n as f64 - 0.3).abs() < 0.02);
    }
}
