//! Departure evaluation for autonomous environments.
//!
//! Scenario 2 and Scenario 4 assume autonomous participants: "a provider
//! leaves the BOINC platform if its satisfaction is smaller than 0.35 […] a
//! consumer stops using BOINC if its satisfaction is smaller than 0.5". The
//! simulator checks these rules at every sampling tick; a participant that
//! trips its threshold departs permanently, taking its capacity (or its
//! queries) with it.

use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{ConsumerId, ProviderId};

use crate::config::DeparturePolicy;
use crate::consumer::ConsumerState;
use crate::provider::ProviderState;

/// The participants that tripped their departure thresholds at a check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepartureRound {
    /// Consumers that decided to leave.
    pub consumers: Vec<ConsumerId>,
    /// Providers that decided to leave.
    pub providers: Vec<ProviderId>,
}

impl DepartureRound {
    /// `true` if nobody left.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty() && self.providers.is_empty()
    }
}

/// Evaluates the departure policy against the current satisfaction state.
///
/// Only online participants with enough recorded interactions are examined;
/// the captive policy never produces departures.
#[must_use]
pub fn evaluate_departures<'a>(
    policy: &DeparturePolicy,
    consumers: impl Iterator<Item = &'a ConsumerState>,
    providers: impl Iterator<Item = &'a ProviderState>,
    satisfaction: &SatisfactionRegistry,
) -> DepartureRound {
    let DeparturePolicy::Autonomous {
        consumer_threshold,
        provider_threshold,
        min_interactions,
    } = policy
    else {
        return DepartureRound::default();
    };

    let mut round = DepartureRound::default();

    for consumer in consumers.filter(|c| c.online) {
        let Some(tracker) = satisfaction.consumer(consumer.id()) else {
            continue;
        };
        // A window smaller than the protection threshold would otherwise make
        // departures impossible, so the effective threshold is capped at k.
        let required = (*min_interactions).min(tracker.window_size());
        if tracker.observed_queries() >= required
            && tracker.satisfaction().is_below(*consumer_threshold)
        {
            round.consumers.push(consumer.id());
        }
    }

    for provider in providers.filter(|p| p.online) {
        let Some(tracker) = satisfaction.provider(provider.id()) else {
            continue;
        };
        let required = (*min_interactions).min(tracker.window_size());
        if tracker.observed_proposals() >= required
            && tracker.satisfaction().is_below(*provider_threshold)
        {
            round.providers.push(provider.id());
        }
    }

    round
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
    use sbqa_types::{Capability, CapabilitySet, Intention, QueryId};

    use crate::consumer::ConsumerSpec;
    use crate::provider::ProviderSpec;

    fn consumer(id: u64) -> ConsumerState {
        ConsumerState::new(ConsumerSpec::new(
            ConsumerId::new(id),
            Capability::new(0),
            1.0,
            1.0,
            1,
            ConsumerProfile::default(),
        ))
    }

    fn provider(id: u64) -> ProviderState {
        ProviderState::new(ProviderSpec::new(
            ProviderId::new(id),
            CapabilitySet::ALL,
            1.0,
            ProviderProfile::default(),
        ))
    }

    fn autonomous(min_interactions: usize) -> DeparturePolicy {
        DeparturePolicy::Autonomous {
            consumer_threshold: 0.5,
            provider_threshold: 0.35,
            min_interactions,
        }
    }

    /// Records `n` fully dissatisfying mediations for consumer 1 and provider 1.
    fn dissatisfy(registry: &mut SatisfactionRegistry, n: usize) {
        for i in 0..n {
            registry.record_mediation(
                QueryId::new(i as u64),
                ConsumerId::new(1),
                1,
                &[(ProviderId::new(1), Intention::new(-1.0))],
                &[(ProviderId::new(1), Intention::new(-1.0), true)],
            );
        }
    }

    #[test]
    fn captive_environments_never_lose_participants() {
        let mut registry = SatisfactionRegistry::new(10);
        dissatisfy(&mut registry, 20);
        let consumers = [consumer(1)];
        let providers = [provider(1)];
        let round = evaluate_departures(
            &DeparturePolicy::Captive,
            consumers.iter(),
            providers.iter(),
            &registry,
        );
        assert!(round.is_empty());
    }

    #[test]
    fn dissatisfied_participants_depart_in_autonomous_mode() {
        let mut registry = SatisfactionRegistry::new(10);
        dissatisfy(&mut registry, 20);
        let consumers = [consumer(1)];
        let providers = [provider(1)];
        let round = evaluate_departures(
            &autonomous(5),
            consumers.iter(),
            providers.iter(),
            &registry,
        );
        assert_eq!(round.consumers, vec![ConsumerId::new(1)]);
        assert_eq!(round.providers, vec![ProviderId::new(1)]);
        assert!(!round.is_empty());
    }

    #[test]
    fn newcomers_are_protected_by_min_interactions() {
        let mut registry = SatisfactionRegistry::new(10);
        dissatisfy(&mut registry, 3);
        let consumers = [consumer(1)];
        let providers = [provider(1)];
        let round = evaluate_departures(
            &autonomous(10),
            consumers.iter(),
            providers.iter(),
            &registry,
        );
        assert!(round.is_empty());
    }

    #[test]
    fn already_departed_participants_are_ignored() {
        let mut registry = SatisfactionRegistry::new(10);
        dissatisfy(&mut registry, 20);
        let mut c = consumer(1);
        c.depart(sbqa_types::VirtualTime::new(1.0));
        let mut p = provider(1);
        p.depart(sbqa_types::VirtualTime::new(1.0));
        let consumers = [c];
        let providers = [p];
        let round = evaluate_departures(
            &autonomous(5),
            consumers.iter(),
            providers.iter(),
            &registry,
        );
        assert!(round.is_empty());
    }

    #[test]
    fn satisfied_participants_stay() {
        let mut registry = SatisfactionRegistry::new(10);
        for i in 0..20 {
            registry.record_mediation(
                QueryId::new(i),
                ConsumerId::new(1),
                1,
                &[(ProviderId::new(1), Intention::new(1.0))],
                &[(ProviderId::new(1), Intention::new(1.0), true)],
            );
        }
        let consumers = [consumer(1)];
        let providers = [provider(1)];
        let round = evaluate_departures(
            &autonomous(5),
            consumers.iter(),
            providers.iter(),
            &registry,
        );
        assert!(round.is_empty());
    }

    #[test]
    fn unknown_participants_without_history_are_skipped() {
        let registry = SatisfactionRegistry::new(10);
        let consumers = [consumer(9)];
        let providers = [provider(9)];
        let round = evaluate_departures(
            &autonomous(0),
            consumers.iter(),
            providers.iter(),
            &registry,
        );
        assert!(round.is_empty());
    }
}
