//! Simulation configuration.

use serde::{Deserialize, Serialize};

use sbqa_types::{Duration, SbqaError, SbqaResult, SystemConfig};

/// Network latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Fixed one-way latency added to every message, in virtual seconds.
    pub base_latency: f64,
    /// Mean of the exponential jitter added on top of the base latency.
    pub jitter_mean: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            base_latency: 0.05,
            jitter_mean: 0.02,
        }
    }
}

impl NetworkConfig {
    /// A zero-latency network, useful for tests that want to reason about
    /// service times alone.
    #[must_use]
    pub const fn instantaneous() -> Self {
        Self {
            base_latency: 0.0,
            jitter_mean: 0.0,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> SbqaResult<()> {
        if !self.base_latency.is_finite() || self.base_latency < 0.0 {
            return Err(SbqaError::invalid_config(
                "network base latency must be a non-negative finite number",
            ));
        }
        if !self.jitter_mean.is_finite() || self.jitter_mean < 0.0 {
            return Err(SbqaError::invalid_config(
                "network jitter mean must be a non-negative finite number",
            ));
        }
        Ok(())
    }
}

/// Whether (and when) participants may leave the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DeparturePolicy {
    /// Captive environment (Scenarios 1 and 3): participants cannot leave.
    #[default]
    Captive,
    /// Autonomous environment (Scenarios 2 and 4): a participant departs for
    /// good as soon as its satisfaction falls below its threshold, provided
    /// it has accumulated at least `min_interactions` interactions (so a
    /// single unlucky first mediation does not expel a newcomer).
    Autonomous {
        /// Consumers leave below this satisfaction (the paper uses 0.5).
        consumer_threshold: f64,
        /// Providers leave below this satisfaction (the paper uses 0.35).
        provider_threshold: f64,
        /// Minimum number of recorded interactions before the rule applies.
        min_interactions: usize,
    },
}

impl DeparturePolicy {
    /// The autonomous policy with the thresholds stated in the paper
    /// (providers leave below 0.35, consumers below 0.5).
    #[must_use]
    pub const fn paper_autonomous() -> Self {
        DeparturePolicy::Autonomous {
            consumer_threshold: 0.5,
            provider_threshold: 0.35,
            min_interactions: 10,
        }
    }

    /// `true` if participants may leave.
    #[must_use]
    pub const fn is_autonomous(&self) -> bool {
        matches!(self, DeparturePolicy::Autonomous { .. })
    }

    /// Validates thresholds.
    pub fn validate(&self) -> SbqaResult<()> {
        if let DeparturePolicy::Autonomous {
            consumer_threshold,
            provider_threshold,
            ..
        } = self
        {
            for (label, value) in [
                ("consumer", consumer_threshold),
                ("provider", provider_threshold),
            ] {
                if !value.is_finite() || !(0.0..=1.0).contains(value) {
                    return Err(SbqaError::invalid_config(format!(
                        "{label} departure threshold must lie in [0, 1], got {value}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Mediator / allocation configuration (KnBest parameters, ω policy,
    /// satisfaction window).
    pub system: SystemConfig,
    /// Length of the run in virtual seconds.
    pub duration: f64,
    /// Interval between metric samples (and departure checks), in virtual
    /// seconds.
    pub sample_interval: f64,
    /// Network latency model.
    pub network: NetworkConfig,
    /// Departure policy (captive vs autonomous).
    pub departure: DeparturePolicy,
    /// Master seed for all random streams.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            system: SystemConfig::default(),
            duration: 1_000.0,
            sample_interval: 10.0,
            network: NetworkConfig::default(),
            departure: DeparturePolicy::Captive,
            seed: 42,
        }
    }
}

impl SimulationConfig {
    /// Validates every component of the configuration.
    pub fn validate(&self) -> SbqaResult<()> {
        self.system.validate()?;
        self.network.validate()?;
        self.departure.validate()?;
        if !self.duration.is_finite() || self.duration <= 0.0 {
            return Err(SbqaError::invalid_config(
                "simulation duration must be a positive finite number of virtual seconds",
            ));
        }
        if !self.sample_interval.is_finite() || self.sample_interval <= 0.0 {
            return Err(SbqaError::invalid_config(
                "sample interval must be a positive finite number of virtual seconds",
            ));
        }
        Ok(())
    }

    /// The run length as a [`Duration`].
    #[must_use]
    pub fn run_length(&self) -> Duration {
        Duration::new(self.duration)
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style departure-policy override.
    #[must_use]
    pub fn with_departure(mut self, departure: DeparturePolicy) -> Self {
        self.departure = departure;
        self
    }

    /// Builder-style duration override.
    #[must_use]
    pub fn with_duration(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Builder-style system-configuration override.
    #[must_use]
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_valid() {
        SimulationConfig::default().validate().unwrap();
    }

    #[test]
    fn network_validation_rejects_bad_latencies() {
        NetworkConfig::default().validate().unwrap();
        NetworkConfig::instantaneous().validate().unwrap();
        assert!(NetworkConfig {
            base_latency: -1.0,
            jitter_mean: 0.0
        }
        .validate()
        .is_err());
        assert!(NetworkConfig {
            base_latency: 0.0,
            jitter_mean: f64::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn departure_policy_validation() {
        DeparturePolicy::Captive.validate().unwrap();
        DeparturePolicy::paper_autonomous().validate().unwrap();
        assert!(DeparturePolicy::paper_autonomous().is_autonomous());
        assert!(!DeparturePolicy::Captive.is_autonomous());
        assert!(DeparturePolicy::Autonomous {
            consumer_threshold: 1.5,
            provider_threshold: 0.35,
            min_interactions: 5
        }
        .validate()
        .is_err());
        assert!(DeparturePolicy::Autonomous {
            consumer_threshold: 0.5,
            provider_threshold: -0.1,
            min_interactions: 5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn simulation_validation_rejects_degenerate_durations() {
        let bad = SimulationConfig::default().with_duration(0.0);
        assert!(bad.validate().is_err());
        let bad = SimulationConfig {
            sample_interval: -1.0,
            ..SimulationConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = SimulationConfig::default()
            .with_seed(7)
            .with_duration(100.0)
            .with_departure(DeparturePolicy::paper_autonomous());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.duration, 100.0);
        assert!(cfg.departure.is_autonomous());
        assert_eq!(cfg.run_length().seconds(), 100.0);
    }

    #[test]
    fn paper_autonomous_matches_scenario_thresholds() {
        match DeparturePolicy::paper_autonomous() {
            DeparturePolicy::Autonomous {
                consumer_threshold,
                provider_threshold,
                ..
            } => {
                assert_eq!(consumer_threshold, 0.5);
                assert_eq!(provider_threshold, 0.35);
            }
            DeparturePolicy::Captive => panic!("expected autonomous policy"),
        }
    }
}
