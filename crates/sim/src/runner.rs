//! The simulation runner: builds the world, drives the event loop, produces
//! the report.
//!
//! The runner hosts a full [`Mediator`] (provider registry + satisfaction
//! registry + the allocation technique) and drives it through
//! [`Mediator::submit_batch`]: query arrivals that land on the same virtual
//! instant are coalesced into one batch, so the mediation scratch and
//! registry lookups are amortized over the drain exactly as they would be in
//! a production ingest queue. Provider load changes (accept/complete) and
//! departures are mirrored into the mediator's capability-indexed registry
//! incrementally, which keeps the per-query candidate computation an index
//! lookup instead of a population scan.

use std::collections::{BTreeMap, HashMap};

use sbqa_core::allocator::{IntentionOracle, QueryAllocator};
use sbqa_core::Mediator;
use sbqa_metrics::{ResponseTimeStats, TimeSeries};
use sbqa_satisfaction::{SatisfactionAnalysis, SatisfactionSnapshot};
use sbqa_types::{
    ConsumerId, IdGenerator, Intention, ProviderId, Query, QueryId, QueryOutcome, SbqaError,
    SbqaResult, VirtualTime,
};

use crate::config::{DeparturePolicy, SimulationConfig};
use crate::consumer::{ConsumerSpec, ConsumerState};
use crate::departure::evaluate_departures;
use crate::event::{Event, EventQueue};
use crate::network::NetworkModel;
use crate::provider::{ProviderSpec, ProviderState};
use crate::report::{ParticipantCounts, SimulationReport};
use crate::rng::SimRng;
use crate::workload::WorkloadModel;

/// Names of the time series every run produces.
pub mod series_names {
    /// Mean satisfaction of online consumers.
    pub const CONSUMER_SATISFACTION: &str = "consumer_satisfaction";
    /// Mean satisfaction of online providers.
    pub const PROVIDER_SATISFACTION: &str = "provider_satisfaction";
    /// Number of providers still online.
    pub const ONLINE_PROVIDERS: &str = "online_providers";
    /// Cumulative mean response time of completed queries.
    pub const MEAN_RESPONSE_TIME: &str = "mean_response_time";
}

/// Builder for a simulation run.
pub struct SimulationBuilder {
    config: SimulationConfig,
    allocator: Option<Box<dyn QueryAllocator>>,
    consumers: Vec<ConsumerSpec>,
    providers: Vec<ProviderSpec>,
    workload: WorkloadModel,
}

impl SimulationBuilder {
    /// Starts a builder from a configuration.
    #[must_use]
    pub fn new(config: SimulationConfig) -> Self {
        Self {
            config,
            allocator: None,
            consumers: Vec::new(),
            providers: Vec::new(),
            workload: WorkloadModel::default(),
        }
    }

    /// Sets the allocation technique to simulate.
    #[must_use]
    pub fn allocator(mut self, allocator: Box<dyn QueryAllocator>) -> Self {
        self.allocator = Some(allocator);
        self
    }

    /// Adds one consumer.
    #[must_use]
    pub fn add_consumer(mut self, spec: ConsumerSpec) -> Self {
        self.consumers.push(spec);
        self
    }

    /// Adds a collection of consumers.
    #[must_use]
    pub fn consumers(mut self, specs: impl IntoIterator<Item = ConsumerSpec>) -> Self {
        self.consumers.extend(specs);
        self
    }

    /// Adds one provider.
    #[must_use]
    pub fn add_provider(mut self, spec: ProviderSpec) -> Self {
        self.providers.push(spec);
        self
    }

    /// Adds a collection of providers.
    #[must_use]
    pub fn providers(mut self, specs: impl IntoIterator<Item = ProviderSpec>) -> Self {
        self.providers.extend(specs);
        self
    }

    /// Overrides the workload model.
    #[must_use]
    pub fn workload(mut self, workload: WorkloadModel) -> Self {
        self.workload = workload;
        self
    }

    /// Validates the ingredients and builds a runnable [`Simulation`].
    pub fn build(self) -> SbqaResult<Simulation> {
        self.config.validate()?;
        let allocator = self.allocator.ok_or_else(|| {
            SbqaError::invalid_config("a simulation needs an allocation technique")
        })?;
        if self.consumers.is_empty() {
            return Err(SbqaError::empty_scenario("no consumers were added"));
        }
        if self.providers.is_empty() {
            return Err(SbqaError::empty_scenario("no providers were added"));
        }
        Ok(Simulation::new(
            self.config,
            allocator,
            self.consumers,
            self.providers,
            self.workload,
        ))
    }

    /// Builds and runs the simulation in one call.
    pub fn run(self) -> SbqaResult<SimulationReport> {
        Ok(self.build()?.run())
    }
}

/// Tracks a query between allocation and the delivery of its last result.
#[derive(Debug, Clone)]
struct PendingQuery {
    query: Query,
    allocated_to: Vec<ProviderId>,
    received: usize,
    completed: bool,
}

/// Intention oracle backed by the simulated participants' profiles.
struct SimOracle<'a> {
    consumers: &'a BTreeMap<ConsumerId, ConsumerState>,
    providers: &'a BTreeMap<ProviderId, ProviderState>,
}

impl IntentionOracle for SimOracle<'_> {
    fn consumer_intention(&self, query: &Query, provider: ProviderId) -> Intention {
        let Some(consumer) = self.consumers.get(&query.consumer) else {
            return Intention::NEUTRAL;
        };
        let Some(provider_state) = self.providers.get(&provider) else {
            return Intention::NEUTRAL;
        };
        consumer
            .spec
            .profile
            .intention_for(&provider_state.snapshot())
    }

    fn provider_intention(&self, provider: ProviderId, query: &Query) -> Intention {
        let Some(provider_state) = self.providers.get(&provider) else {
            return Intention::NEUTRAL;
        };
        provider_state
            .spec
            .profile
            .intention_for(query, provider_state.backlog_seconds())
    }
}

/// A fully-assembled simulation, ready to run.
pub struct Simulation {
    config: SimulationConfig,
    technique: String,
    mediator: Mediator,
    consumers: BTreeMap<ConsumerId, ConsumerState>,
    providers: BTreeMap<ProviderId, ProviderState>,
    workload: WorkloadModel,
    network: NetworkModel,
    events: EventQueue,
    clock: VirtualTime,
    arrival_rng: SimRng,
    network_rng: SimRng,
    workload_rng: SimRng,
    query_ids: IdGenerator,
    // sbqa-lint: allow(hash-collection, "keyed point lookups by QueryId; completions are drained in departure-heap order")
    pending: HashMap<QueryId, PendingQuery>,
    /// Queries staged for the next mediation batch (arrivals at one instant).
    batch: Vec<Query>,
    /// Per-batch-entry outcome: the selected providers, or `None` if starved.
    batch_outcomes: Vec<Option<Vec<ProviderId>>>,
    // Metrics.
    response: ResponseTimeStats,
    analysis: SatisfactionAnalysis,
    ts_consumer_sat: TimeSeries,
    ts_provider_sat: TimeSeries,
    ts_online_providers: TimeSeries,
    ts_mean_response: TimeSeries,
    queries_issued: u64,
    initial_capacity: f64,
}

impl Simulation {
    fn new(
        config: SimulationConfig,
        allocator: Box<dyn QueryAllocator>,
        consumer_specs: Vec<ConsumerSpec>,
        provider_specs: Vec<ProviderSpec>,
        workload: WorkloadModel,
    ) -> Self {
        let technique = allocator.name().to_string();
        let master = SimRng::new(config.seed);
        let mut mediator = Mediator::new(allocator, config.system.satisfaction_window);

        let mut consumers = BTreeMap::new();
        for spec in consumer_specs {
            mediator.register_consumer(spec.id);
            consumers.insert(spec.id, ConsumerState::new(spec));
        }
        let mut providers = BTreeMap::new();
        let mut initial_capacity = 0.0;
        for spec in provider_specs {
            mediator.register_provider(spec.id, spec.capabilities, spec.capacity);
            initial_capacity += spec.capacity;
            providers.insert(spec.id, ProviderState::new(spec));
        }

        let analysis = SatisfactionAnalysis::new(technique.clone());
        Self {
            network: NetworkModel::new(config.network),
            arrival_rng: master.derive(1),
            network_rng: master.derive(2),
            workload_rng: master.derive(3),
            config,
            technique,
            mediator,
            consumers,
            providers,
            workload,
            events: EventQueue::new(),
            clock: VirtualTime::ZERO,
            query_ids: IdGenerator::new(),
            // sbqa-lint: allow(hash-collection, "keyed point lookups by QueryId; completions are drained in departure-heap order")
            pending: HashMap::new(),
            batch: Vec::new(),
            batch_outcomes: Vec::new(),
            response: ResponseTimeStats::new(),
            analysis,
            ts_consumer_sat: TimeSeries::new(series_names::CONSUMER_SATISFACTION),
            ts_provider_sat: TimeSeries::new(series_names::PROVIDER_SATISFACTION),
            ts_online_providers: TimeSeries::new(series_names::ONLINE_PROVIDERS),
            ts_mean_response: TimeSeries::new(series_names::MEAN_RESPONSE_TIME),
            queries_issued: 0,
            initial_capacity,
        }
    }

    /// The allocation technique being simulated.
    #[must_use]
    pub fn technique(&self) -> &str {
        &self.technique
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> SimulationReport {
        let end = VirtualTime::new(self.config.duration);

        // Prime the event queue: first query of every consumer, first sample.
        let consumer_ids: Vec<ConsumerId> = self.consumers.keys().copied().collect();
        for id in consumer_ids {
            let delay = {
                let spec = &self.consumers[&id].spec;
                self.workload.next_arrival(spec, &mut self.arrival_rng)
            };
            self.events.schedule(
                VirtualTime::ZERO + delay,
                Event::QueryIssued { consumer: id },
            );
        }
        self.events
            .schedule(VirtualTime::new(self.config.sample_interval), Event::Sample);

        while let Some(scheduled) = self.events.pop() {
            if scheduled.at > end {
                break;
            }
            self.clock = scheduled.at;
            match scheduled.event {
                Event::QueryIssued { consumer } => {
                    // Coalesce every arrival at this instant into one batch:
                    // FIFO order among simultaneous events is preserved, and
                    // the mediation scratch is amortized over the drain.
                    self.stage_query(consumer);
                    while matches!(
                        self.events.peek(),
                        Some(next) if next.at == self.clock
                            && matches!(next.event, Event::QueryIssued { .. })
                    ) {
                        let Some(next) = self.events.pop() else {
                            break;
                        };
                        let Event::QueryIssued { consumer } = next.event else {
                            unreachable!("peeked a QueryIssued event");
                        };
                        self.stage_query(consumer);
                    }
                    self.flush_batch();
                }
                Event::QueryReceived { provider, query } => {
                    self.on_query_received(provider, query);
                }
                Event::QueryCompleted { provider, query } => {
                    self.on_query_completed(provider, query);
                }
                Event::ResultDelivered { provider, query } => {
                    self.on_result_delivered(provider, query);
                }
                Event::Sample => self.on_sample(),
            }
        }

        self.finish()
    }

    /// Builds the consumer's next query, schedules the one after it, and
    /// stages the query for the current mediation batch.
    fn stage_query(&mut self, consumer_id: ConsumerId) {
        let Some(consumer) = self.consumers.get(&consumer_id) else {
            return;
        };
        if !consumer.online {
            return;
        }

        let query = self.workload.next_query(
            self.query_ids.next_query(),
            &consumer.spec,
            self.clock,
            &mut self.workload_rng,
        );
        let next_in = self
            .workload
            .next_arrival(&consumer.spec, &mut self.arrival_rng);
        self.events.schedule(
            self.clock + next_in,
            Event::QueryIssued {
                consumer: consumer_id,
            },
        );

        self.queries_issued += 1;
        if let Some(state) = self.consumers.get_mut(&consumer_id) {
            state.queries_issued += 1;
        }
        self.batch.push(query);
    }

    /// Drains the staged queries through `Mediator::submit_batch` and turns
    /// each decision into simulator events.
    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.batch);
        self.batch_outcomes.clear();
        {
            let oracle = SimOracle {
                consumers: &self.consumers,
                providers: &self.providers,
            };
            let outcomes = &mut self.batch_outcomes;
            self.mediator.submit_batch(&batch, &oracle, |_, _, result| {
                outcomes.push(match result {
                    Ok(decision) if !decision.is_starved() => Some(decision.selected.clone()),
                    _ => None,
                });
            });
        }

        for (position, query) in batch.drain(..).enumerate() {
            match self.batch_outcomes[position].take() {
                Some(selected) => {
                    // Ship the query to every selected provider.
                    for provider in &selected {
                        let latency = self.network.sample_latency(&mut self.network_rng);
                        self.events.schedule(
                            self.clock + latency,
                            Event::QueryReceived {
                                provider: *provider,
                                query: query.clone(),
                            },
                        );
                    }
                    self.pending.insert(
                        query.id,
                        PendingQuery {
                            allocated_to: selected,
                            received: 0,
                            completed: false,
                            query,
                        },
                    );
                }
                None => self.record_starved(&query),
            }
        }
        // Hand the (now empty) buffer back so its capacity is reused by the
        // next arrival instant.
        self.batch = batch;
    }

    /// Mirrors a provider's current load into the mediator's registry so the
    /// next mediation sees it. Called on every accept/complete transition.
    fn sync_provider_load(&mut self, provider_id: ProviderId) {
        if let Some(provider) = self.providers.get(&provider_id) {
            self.mediator
                .update_provider_load(
                    provider_id,
                    provider.backlog_seconds(),
                    provider.queue_length(),
                )
                .expect("provider is registered with the mediator");
        }
    }

    fn on_query_received(&mut self, provider_id: ProviderId, query: Query) {
        let Some(provider) = self.providers.get_mut(&provider_id) else {
            return;
        };
        if !provider.online {
            // The provider left between allocation and delivery; the result
            // will simply never arrive.
            return;
        }
        let query_id = query.id;
        if let Some(started) = provider.accept(query) {
            self.events.schedule(
                self.clock + started.service_time,
                Event::QueryCompleted {
                    provider: provider_id,
                    query: query_id,
                },
            );
        }
        self.sync_provider_load(provider_id);
    }

    fn on_query_completed(&mut self, provider_id: ProviderId, query: QueryId) {
        let Some(provider) = self.providers.get_mut(&provider_id) else {
            return;
        };
        if !provider.online {
            return;
        }
        if let Some(next) = provider.complete(query) {
            self.events.schedule(
                self.clock + next.service_time,
                Event::QueryCompleted {
                    provider: provider_id,
                    query: next.query,
                },
            );
        }
        self.sync_provider_load(provider_id);
        let latency = self.network.sample_latency(&mut self.network_rng);
        self.events.schedule(
            self.clock + latency,
            Event::ResultDelivered {
                provider: provider_id,
                query,
            },
        );
    }

    fn on_result_delivered(&mut self, _provider: ProviderId, query: QueryId) {
        let Some(pending) = self.pending.get_mut(&query) else {
            return;
        };
        if pending.completed {
            return;
        }
        pending.received += 1;
        if pending.received < pending.allocated_to.len() {
            return;
        }
        pending.completed = true;
        let outcome = QueryOutcome {
            query,
            consumer: pending.query.consumer,
            performed_by: pending.allocated_to.clone(),
            issued_at: pending.query.issued_at,
            completed_at: Some(self.clock),
            starved: false,
        };
        let consumer = pending.query.consumer;
        self.response.record_outcome(&outcome);
        if let Some(state) = self.consumers.get_mut(&consumer) {
            state.queries_completed += 1;
        }
    }

    fn on_sample(&mut self) {
        let (consumer_threshold, provider_threshold) = match self.config.departure {
            DeparturePolicy::Autonomous {
                consumer_threshold,
                provider_threshold,
                ..
            } => (consumer_threshold, provider_threshold),
            DeparturePolicy::Captive => (0.5, 0.35),
        };

        let snapshot = SatisfactionSnapshot::capture(
            self.mediator.satisfaction(),
            self.clock,
            consumer_threshold,
            provider_threshold,
        );
        self.ts_consumer_sat
            .push(self.clock, snapshot.consumers.mean);
        self.ts_provider_sat
            .push(self.clock, snapshot.providers.mean);
        self.ts_online_providers.push(
            self.clock,
            self.providers.values().filter(|p| p.online).count() as f64,
        );
        if self.response.completed() > 0 {
            self.ts_mean_response.push(self.clock, self.response.mean());
        }
        self.analysis.push(snapshot);

        // Departures (autonomous environments only).
        let round = evaluate_departures(
            &self.config.departure,
            self.consumers.values(),
            self.providers.values(),
            self.mediator.satisfaction(),
        );
        for consumer in round.consumers {
            if let Some(state) = self.consumers.get_mut(&consumer) {
                state.depart(self.clock);
            }
            self.mediator.satisfaction_mut().remove_consumer(consumer);
        }
        for provider in round.providers {
            if let Some(state) = self.providers.get_mut(&provider) {
                state.depart(self.clock);
            }
            // The provider leaves the candidate index and the satisfaction
            // bookkeeping; its slab entry stays for final reporting.
            self.mediator
                .set_provider_online(provider, false)
                .expect("departing provider is registered with the mediator");
            self.mediator.satisfaction_mut().remove_provider(provider);
        }

        let next = self.clock + sbqa_types::Duration::new(self.config.sample_interval);
        if next <= VirtualTime::new(self.config.duration) {
            self.events.schedule(next, Event::Sample);
        }
    }

    fn record_starved(&mut self, query: &Query) {
        self.response.record_outcome(&QueryOutcome {
            query: query.id,
            consumer: query.consumer,
            performed_by: Vec::new(),
            issued_at: query.issued_at,
            completed_at: None,
            starved: true,
        });
        if let Some(state) = self.consumers.get_mut(&query.consumer) {
            state.queries_starved += 1;
        }
    }

    fn finish(mut self) -> SimulationReport {
        // Queries still in flight at the end of the run.
        for pending in self.pending.values() {
            if !pending.completed {
                self.response.record_unfinished();
            }
        }

        let final_capacity: f64 = self
            .providers
            .values()
            .filter(|p| p.online)
            .map(|p| p.spec.capacity)
            .sum();
        let participants = ParticipantCounts {
            initial_consumers: self.consumers.len(),
            initial_providers: self.providers.len(),
            final_consumers: self.consumers.values().filter(|c| c.online).count(),
            final_providers: self.providers.values().filter(|p| p.online).count(),
        };

        let consumer_final_satisfaction: Vec<(ConsumerId, f64)> = self
            .consumers
            .values()
            .filter(|c| c.online)
            .map(|c| {
                (
                    c.id(),
                    self.mediator
                        .satisfaction()
                        .consumer_satisfaction(c.id())
                        .value(),
                )
            })
            .collect();
        let provider_final_satisfaction: Vec<(ProviderId, f64)> = self
            .providers
            .values()
            .filter(|p| p.online)
            .map(|p| {
                (
                    p.id(),
                    self.mediator
                        .satisfaction()
                        .provider_satisfaction(p.id())
                        .value(),
                )
            })
            .collect();

        SimulationReport {
            technique: self.technique,
            duration: self.config.duration,
            seed: self.config.seed,
            queries_issued: self.queries_issued,
            response: self.response,
            satisfaction: self.analysis,
            queries_per_provider: self
                .providers
                .values()
                .map(|p| (p.id(), p.queries_performed))
                .collect(),
            provider_capacities: self
                .providers
                .values()
                .map(|p| (p.id(), p.spec.capacity))
                .collect(),
            participants,
            capacity_retention: if self.initial_capacity > 0.0 {
                final_capacity / self.initial_capacity
            } else {
                1.0
            },
            series: vec![
                self.ts_consumer_sat,
                self.ts_provider_sat,
                self.ts_online_providers,
                self.ts_mean_response,
            ],
            consumer_final_satisfaction,
            provider_final_satisfaction,
            plan_cache: self.mediator.plan_cache_stats(),
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("technique", &self.technique)
            .field("consumers", &self.consumers.len())
            .field("providers", &self.providers.len())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::{ConsumerProfile, ProviderProfile};
    use sbqa_core::SbqaAllocator;
    use sbqa_types::{Capability, CapabilitySet, SystemConfig};

    use crate::config::NetworkConfig;

    fn consumer(id: u64, rate: f64) -> ConsumerSpec {
        ConsumerSpec::new(
            ConsumerId::new(id),
            Capability::new(0),
            rate,
            1.0,
            1,
            ConsumerProfile::default(),
        )
    }

    fn provider(id: u64, capacity: f64) -> ProviderSpec {
        ProviderSpec::new(
            ProviderId::new(id),
            CapabilitySet::singleton(Capability::new(0)),
            capacity,
            ProviderProfile::default(),
        )
    }

    fn base_config(duration: f64) -> SimulationConfig {
        SimulationConfig {
            duration,
            sample_interval: 5.0,
            network: NetworkConfig::instantaneous(),
            ..SimulationConfig::default()
        }
    }

    fn sbqa(config: &SimulationConfig) -> Box<dyn QueryAllocator> {
        Box::new(SbqaAllocator::new(config.system.clone(), config.seed).unwrap())
    }

    #[test]
    fn builder_rejects_missing_ingredients() {
        let config = base_config(10.0);
        // No allocator.
        let err = SimulationBuilder::new(config.clone())
            .add_consumer(consumer(1, 1.0))
            .add_provider(provider(100, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SbqaError::InvalidConfiguration { .. }));

        // No consumers.
        let err = SimulationBuilder::new(config.clone())
            .allocator(sbqa(&config))
            .add_provider(provider(100, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SbqaError::EmptyScenario { .. }));

        // No providers.
        let err = SimulationBuilder::new(config.clone())
            .allocator(sbqa(&config))
            .add_consumer(consumer(1, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SbqaError::EmptyScenario { .. }));
    }

    #[test]
    fn small_run_completes_queries() {
        let config = base_config(200.0);
        let report = SimulationBuilder::new(config.clone())
            .allocator(sbqa(&config))
            .consumers((0..2).map(|i| consumer(i, 0.5)))
            .providers((100..110).map(|i| provider(i, 2.0)))
            .run()
            .unwrap();

        assert_eq!(report.technique, "SbQA");
        assert!(
            report.queries_issued > 50,
            "issued {}",
            report.queries_issued
        );
        assert!(report.response.completed() > 0);
        assert!(report.response.completion_rate() > 0.8);
        assert!(report.response.mean() > 0.0);
        // Captive environment: nobody leaves.
        assert_eq!(report.participants.final_providers, 10);
        assert_eq!(report.participants.final_consumers, 2);
        assert!((report.capacity_retention - 1.0).abs() < 1e-12);
        // Series were sampled.
        assert!(!report
            .series_named(series_names::CONSUMER_SATISFACTION)
            .unwrap()
            .is_empty());
        assert!(!report
            .series_named(series_names::ONLINE_PROVIDERS)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let config = base_config(100.0).with_seed(seed);
            SimulationBuilder::new(config.clone())
                .allocator(sbqa(&config))
                .consumers((0..3).map(|i| consumer(i, 1.0)))
                .providers((100..120).map(|i| provider(i, 1.5)))
                .run()
                .unwrap()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a.queries_issued, b.queries_issued);
        assert_eq!(a.response.completed(), b.response.completed());
        assert!((a.response.mean() - b.response.mean()).abs() < 1e-12);
        // A different seed gives a different trajectory.
        assert!(
            a.queries_issued != c.queries_issued
                || (a.response.mean() - c.response.mean()).abs() > 1e-12
        );
    }

    #[test]
    fn starvation_is_recorded_when_no_provider_is_capable() {
        let config = base_config(50.0);
        // Providers advertise capability 1, consumers require capability 0.
        let report = SimulationBuilder::new(config.clone())
            .allocator(sbqa(&config))
            .add_consumer(consumer(1, 1.0))
            .add_provider(ProviderSpec::new(
                ProviderId::new(100),
                CapabilitySet::singleton(Capability::new(1)),
                1.0,
                ProviderProfile::default(),
            ))
            .run()
            .unwrap();
        assert!(report.response.starved() > 0);
        assert_eq!(report.response.completed(), 0);
    }

    #[test]
    fn overload_leaves_unfinished_queries() {
        // One slow provider, heavy arrivals: the backlog cannot drain.
        let config = base_config(100.0);
        let report = SimulationBuilder::new(config.clone())
            .allocator(sbqa(&config))
            .add_consumer(consumer(1, 5.0))
            .add_provider(provider(100, 0.2))
            .run()
            .unwrap();
        assert!(report.response.unfinished() > 0);
        assert!(report.queries_issued > report.response.completed());
    }

    #[test]
    fn autonomous_environment_can_lose_dissatisfied_providers() {
        // Providers hate every query (preference -1) but a load-blind
        // capacity allocator keeps assigning work to the least loaded one, so
        // provider satisfaction collapses and departures follow.
        let mut config = base_config(400.0);
        config.departure = DeparturePolicy::Autonomous {
            consumer_threshold: 0.0, // consumers never leave in this test
            provider_threshold: 0.35,
            min_interactions: 5,
        };
        config.system = SystemConfig::default().with_knbest(4, 2);

        let providers = (100..110).map(|i| {
            ProviderSpec::new(
                ProviderId::new(i),
                CapabilitySet::singleton(Capability::new(0)),
                2.0,
                ProviderProfile::new(
                    sbqa_core::intention::ProviderIntentionStrategy::Preference,
                    Intention::new(-1.0),
                ),
            )
        });
        let report = SimulationBuilder::new(config.clone())
            .allocator(Box::new(sbqa_baselines::CapacityAllocator::new()))
            .add_consumer(consumer(1, 2.0))
            .providers(providers)
            .run()
            .unwrap();

        assert!(
            report.participants.final_providers < report.participants.initial_providers,
            "expected departures, kept {} of {}",
            report.participants.final_providers,
            report.participants.initial_providers
        );
        assert!(report.capacity_retention < 1.0);
    }

    #[test]
    fn debug_and_technique_accessors() {
        let config = base_config(10.0);
        let sim = SimulationBuilder::new(config.clone())
            .allocator(sbqa(&config))
            .add_consumer(consumer(1, 1.0))
            .add_provider(provider(100, 1.0))
            .build()
            .unwrap();
        assert_eq!(sim.technique(), "SbQA");
        assert!(format!("{sim:?}").contains("SbQA"));
    }
}
