//! Simulated providers.
//!
//! A provider is a single-server FIFO queue: it executes one query at a time
//! at its configured capacity (work units per virtual second) and queues the
//! rest. Its *utilization*, as exposed to the mediator, is the backlog of
//! work it still has to do, expressed in virtual seconds — the quantity
//! KnBest minimises and the load-driven intention strategies react to.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use sbqa_core::allocator::ProviderSnapshot;
use sbqa_core::intention::ProviderProfile;
use sbqa_types::{CapabilitySet, Duration, ProviderId, Query, QueryId, VirtualTime};

/// Static description of a provider in a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderSpec {
    /// The provider's identity.
    pub id: ProviderId,
    /// Capabilities the provider advertises (which queries it can perform).
    pub capabilities: CapabilitySet,
    /// Processing capacity in work units per virtual second.
    pub capacity: f64,
    /// How the provider computes its intentions.
    pub profile: ProviderProfile,
}

impl ProviderSpec {
    /// Creates a provider spec, sanitising non-positive capacities to 1.
    #[must_use]
    pub fn new(
        id: ProviderId,
        capabilities: CapabilitySet,
        capacity: f64,
        profile: ProviderProfile,
    ) -> Self {
        Self {
            id,
            capabilities,
            capacity: if capacity.is_finite() && capacity > 0.0 {
                capacity
            } else {
                1.0
            },
            profile,
        }
    }
}

/// The execution a provider starts when it picks up a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartedExecution {
    /// The query being executed.
    pub query: QueryId,
    /// How long the execution will take.
    pub service_time: Duration,
}

/// Runtime state of a simulated provider.
#[derive(Debug, Clone)]
pub struct ProviderState {
    /// The static spec this state was built from.
    pub spec: ProviderSpec,
    /// `true` while the provider is part of the system.
    pub online: bool,
    /// Virtual time at which the provider departed, if it did.
    pub departed_at: Option<VirtualTime>,
    queue: VecDeque<Query>,
    executing: Option<(QueryId, Duration)>,
    backlog_seconds: f64,
    /// Number of queries this provider finished executing.
    pub queries_performed: u64,
    /// Total virtual time spent executing queries.
    pub busy_time: Duration,
}

impl ProviderState {
    /// Creates the runtime state for a spec.
    #[must_use]
    pub fn new(spec: ProviderSpec) -> Self {
        Self {
            spec,
            online: true,
            departed_at: None,
            queue: VecDeque::new(),
            executing: None,
            backlog_seconds: 0.0,
            queries_performed: 0,
            busy_time: Duration::ZERO,
        }
    }

    /// The provider's identity.
    #[must_use]
    pub fn id(&self) -> ProviderId {
        self.spec.id
    }

    /// Remaining work in virtual seconds (queued plus executing).
    #[must_use]
    pub fn backlog_seconds(&self) -> f64 {
        self.backlog_seconds
    }

    /// Number of queries queued or executing.
    #[must_use]
    pub fn queue_length(&self) -> usize {
        self.queue.len() + usize::from(self.executing.is_some())
    }

    /// `true` if the provider is executing a query right now.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.executing.is_some()
    }

    /// The mediator-visible snapshot of this provider.
    #[must_use]
    pub fn snapshot(&self) -> ProviderSnapshot {
        ProviderSnapshot {
            id: self.spec.id,
            capabilities: self.spec.capabilities,
            capacity: self.spec.capacity,
            utilization: self.backlog_seconds,
            queue_length: self.queue_length(),
            online: self.online,
        }
    }

    /// Accepts a query. If the provider was idle it starts executing it
    /// immediately and the returned [`StartedExecution`] tells the runner
    /// when to schedule the completion event; otherwise the query waits in
    /// the FIFO queue.
    pub fn accept(&mut self, query: Query) -> Option<StartedExecution> {
        let service = query.service_time(self.spec.capacity);
        self.backlog_seconds += service.seconds();
        if self.executing.is_none() {
            let id = query.id;
            self.executing = Some((id, service));
            Some(StartedExecution {
                query: id,
                service_time: service,
            })
        } else {
            self.queue.push_back(query);
            None
        }
    }

    /// Marks the currently executing query as finished and starts the next
    /// queued one, if any. Returns the execution the runner must schedule a
    /// completion event for.
    ///
    /// The `completed` id is checked against the executing query to catch
    /// runner bookkeeping bugs early.
    pub fn complete(&mut self, completed: QueryId) -> Option<StartedExecution> {
        match self.executing.take() {
            Some((current, service)) if current == completed => {
                self.backlog_seconds = (self.backlog_seconds - service.seconds()).max(0.0);
                self.queries_performed += 1;
                self.busy_time += service;
            }
            Some(other) => {
                // Put it back; completing a query that is not running is a
                // bug in the caller, not in the provider.
                self.executing = Some(other);
                debug_assert!(false, "completed {completed} but executing {other:?}");
                return None;
            }
            None => {
                debug_assert!(false, "completed {completed} while idle");
                return None;
            }
        }

        let next = self.queue.pop_front()?;
        let service = next.service_time(self.spec.capacity);
        let id = next.id;
        self.executing = Some((id, service));
        Some(StartedExecution {
            query: id,
            service_time: service,
        })
    }

    /// Marks the provider as departed (autonomous environments). Queued work
    /// is dropped; the queries' consumers simply never receive those results.
    pub fn depart(&mut self, at: VirtualTime) {
        self.online = false;
        self.departed_at = Some(at);
        self.queue.clear();
        self.executing = None;
        self.backlog_seconds = 0.0;
    }

    /// Utilization of the provider over a run of the given length: fraction
    /// of time spent executing queries, in `[0, 1]`.
    #[must_use]
    pub fn utilization_over(&self, run_length: Duration) -> f64 {
        if run_length.seconds() <= 0.0 {
            return 0.0;
        }
        (self.busy_time.seconds() / run_length.seconds()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::intention::ProviderProfile;
    use sbqa_types::{Capability, ConsumerId, QueryId};

    fn spec(capacity: f64) -> ProviderSpec {
        ProviderSpec::new(
            ProviderId::new(1),
            CapabilitySet::singleton(Capability::new(0)),
            capacity,
            ProviderProfile::default(),
        )
    }

    fn query(id: u64, work: f64) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
            .work_units(work)
            .build()
    }

    #[test]
    fn spec_sanitises_capacity() {
        assert_eq!(spec(-1.0).capacity, 1.0);
        assert_eq!(spec(4.0).capacity, 4.0);
    }

    #[test]
    fn idle_provider_starts_immediately() {
        let mut p = ProviderState::new(spec(2.0));
        assert!(!p.is_busy());
        let started = p
            .accept(query(1, 10.0))
            .expect("idle provider starts at once");
        assert_eq!(started.query, QueryId::new(1));
        assert_eq!(started.service_time.seconds(), 5.0);
        assert!(p.is_busy());
        assert_eq!(p.queue_length(), 1);
        assert_eq!(p.backlog_seconds(), 5.0);
    }

    #[test]
    fn busy_provider_queues_fifo() {
        let mut p = ProviderState::new(spec(1.0));
        p.accept(query(1, 1.0)).unwrap();
        assert!(p.accept(query(2, 2.0)).is_none());
        assert!(p.accept(query(3, 3.0)).is_none());
        assert_eq!(p.queue_length(), 3);
        assert_eq!(p.backlog_seconds(), 6.0);

        // Completing query 1 starts query 2.
        let next = p.complete(QueryId::new(1)).expect("queue not empty");
        assert_eq!(next.query, QueryId::new(2));
        assert_eq!(p.queries_performed, 1);
        assert_eq!(p.backlog_seconds(), 5.0);
        assert_eq!(p.busy_time.seconds(), 1.0);

        let next = p.complete(QueryId::new(2)).expect("one more queued");
        assert_eq!(next.query, QueryId::new(3));
        assert!(p.complete(QueryId::new(3)).is_none());
        assert!(!p.is_busy());
        assert_eq!(p.queries_performed, 3);
        assert_eq!(p.backlog_seconds(), 0.0);
    }

    #[test]
    fn snapshot_reflects_current_state() {
        let mut p = ProviderState::new(spec(2.0));
        p.accept(query(1, 4.0)).unwrap();
        let snap = p.snapshot();
        assert_eq!(snap.id, ProviderId::new(1));
        assert_eq!(snap.capacity, 2.0);
        assert_eq!(snap.utilization, 2.0);
        assert_eq!(snap.queue_length, 1);
        assert!(snap.online);
    }

    #[test]
    fn departure_clears_pending_work() {
        let mut p = ProviderState::new(spec(1.0));
        p.accept(query(1, 1.0)).unwrap();
        p.accept(query(2, 1.0));
        p.depart(VirtualTime::new(10.0));
        assert!(!p.online);
        assert_eq!(p.departed_at, Some(VirtualTime::new(10.0)));
        assert_eq!(p.queue_length(), 0);
        assert_eq!(p.backlog_seconds(), 0.0);
        assert!(!p.snapshot().online);
    }

    #[test]
    fn utilization_over_run_is_bounded() {
        let mut p = ProviderState::new(spec(1.0));
        p.accept(query(1, 5.0)).unwrap();
        p.complete(QueryId::new(1));
        assert!((p.utilization_over(Duration::new(10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(p.utilization_over(Duration::ZERO), 0.0);
        assert!(p.utilization_over(Duration::new(1.0)) <= 1.0);
    }
}
