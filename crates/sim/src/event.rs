//! The event queue at the heart of the discrete-event simulation.
//!
//! Events are ordered by virtual time; ties are broken by a monotonically
//! increasing sequence number so that the execution order is deterministic
//! and FIFO among simultaneous events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sbqa_types::{ConsumerId, ProviderId, Query, QueryId, VirtualTime};

/// Something that happens at a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A consumer issues its next query (and schedules the following one).
    QueryIssued {
        /// The issuing consumer.
        consumer: ConsumerId,
    },
    /// A query (work request) reaches a provider after network latency.
    QueryReceived {
        /// The receiving provider.
        provider: ProviderId,
        /// The query to enqueue.
        query: Query,
    },
    /// A provider finishes executing a query.
    QueryCompleted {
        /// The provider that finished.
        provider: ProviderId,
        /// The finished query.
        query: QueryId,
    },
    /// A result reaches the issuing consumer after network latency.
    ResultDelivered {
        /// The provider that produced the result.
        provider: ProviderId,
        /// The query the result answers.
        query: QueryId,
    },
    /// Periodic metrics sampling and departure evaluation.
    Sample,
}

/// An event scheduled at a specific virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: VirtualTime,
    /// Tie-breaking sequence number (assigned by the queue).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at the given time.
    pub fn schedule(&mut self, at: VirtualTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Peeks at the earliest event without removing it. The runner uses this
    /// to coalesce simultaneous query arrivals into one mediation batch.
    #[must_use]
    pub fn peek(&self) -> Option<&ScheduledEvent> {
        self.heap.peek()
    }

    /// Peeks at the time of the earliest event without removing it.
    #[must_use]
    pub fn next_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no event is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::new(5.0), Event::Sample);
        q.schedule(VirtualTime::new(1.0), Event::Sample);
        q.schedule(VirtualTime::new(3.0), Event::Sample);

        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.seconds())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = VirtualTime::new(2.0);
        q.schedule(
            t,
            Event::QueryIssued {
                consumer: ConsumerId::new(1),
            },
        );
        q.schedule(
            t,
            Event::QueryIssued {
                consumer: ConsumerId::new(2),
            },
        );
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert!(first.seq < second.seq);
        match (first.event, second.event) {
            (Event::QueryIssued { consumer: c1 }, Event::QueryIssued { consumer: c2 }) => {
                assert_eq!(c1, ConsumerId::new(1));
                assert_eq!(c2, ConsumerId::new(2));
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn next_time_peeks_without_removing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(VirtualTime::new(4.0), Event::Sample);
        assert_eq!(q.next_time(), Some(VirtualTime::new(4.0)));
        assert_eq!(q.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_non_decreasing(times in proptest::collection::vec(0.0f64..1e6, 0..200)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.schedule(VirtualTime::new(*t), Event::Sample);
            }
            let mut last = VirtualTime::ZERO;
            while let Some(e) = q.pop() {
                prop_assert!(e.at >= last);
                last = e.at;
            }
        }
    }
}
