//! The seven demonstration scenarios (Section IV of the paper), packaged as
//! runnable experiment presets.
//!
//! Each scenario fixes a population, an environment (captive or autonomous)
//! and a set of allocation techniques, runs one simulation per technique on
//! *the same* population and seed, and returns the per-technique reports so
//! the harness can print the comparison tables and CSV curves.
//!
//! | Scenario | Environment | Techniques | What it demonstrates |
//! |---|---|---|---|
//! | S1 | captive | Capacity, Economic | the satisfaction model applies to any technique |
//! | S2 | autonomous | Capacity, Economic | dissatisfaction predicts departures |
//! | S3 | captive | SbQA, Capacity, Economic | SbQA is competitive even in captive settings |
//! | S4 | autonomous | SbQA, Capacity, Economic | SbQA preserves volunteers and hence capacity |
//! | S5 | captive | SbQA, Capacity, Economic | SbQA adapts when participants care about performance |
//! | S6 | autonomous | SbQA(kn, ω) grid | kn and ω adapt the process to the application |
//! | S7 | autonomous | SbQA, Capacity, Economic | a participant with its own objectives is served best by SQLB |

use serde::{Deserialize, Serialize};

use sbqa_baselines::build_allocator;
use sbqa_core::intention::ProviderIntentionStrategy;
use sbqa_core::SbqaAllocator;
use sbqa_metrics::{CsvWriter, Table};
use sbqa_sim::{DeparturePolicy, SimulationBuilder, SimulationConfig, SimulationReport};
use sbqa_types::{AllocationPolicyKind, OmegaPolicy, SbqaResult};

use crate::interactive::InteractiveParticipant;
use crate::population::{BoincPopulation, PopulationConfig, ProjectBehaviour};

/// Identifier of a demonstration scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioId {
    /// Satisfaction model applied to the baselines, captive environment.
    S1,
    /// Baselines in an autonomous environment (departures by dissatisfaction).
    S2,
    /// SbQA vs baselines, captive environment.
    S3,
    /// SbQA vs baselines, autonomous environment.
    S4,
    /// Adaptation to participants' expectations (performance-driven intentions).
    S5,
    /// Application adaptability: sweep of `kn` and ω.
    S6,
    /// A scripted participant with its own objectives across mediations.
    S7,
}

impl ScenarioId {
    /// All scenarios in order.
    #[must_use]
    pub const fn all() -> [ScenarioId; 7] {
        [
            ScenarioId::S1,
            ScenarioId::S2,
            ScenarioId::S3,
            ScenarioId::S4,
            ScenarioId::S5,
            ScenarioId::S6,
            ScenarioId::S7,
        ]
    }

    /// Scenario number (1-based, as in the paper).
    #[must_use]
    pub const fn number(self) -> usize {
        match self {
            ScenarioId::S1 => 1,
            ScenarioId::S2 => 2,
            ScenarioId::S3 => 3,
            ScenarioId::S4 => 4,
            ScenarioId::S5 => 5,
            ScenarioId::S6 => 6,
            ScenarioId::S7 => 7,
        }
    }

    /// Short title used in report headers.
    #[must_use]
    pub const fn title(self) -> &'static str {
        match self {
            ScenarioId::S1 => "Satisfaction model: baselines in a captive environment",
            ScenarioId::S2 => "Satisfaction model: baselines in an autonomous environment",
            ScenarioId::S3 => "Query allocation: SbQA vs baselines, captive environment",
            ScenarioId::S4 => "Query allocation: SbQA vs baselines, autonomous environment",
            ScenarioId::S5 => "Adaptation to participants' expectations (performance-driven)",
            ScenarioId::S6 => "Application adaptability: varying kn and omega",
            ScenarioId::S7 => "Playing a BOINC participant with its own objectives",
        }
    }
}

/// The result of running one technique inside a scenario.
#[derive(Debug, Clone)]
pub struct TechniqueResult {
    /// Label of the technique (or SbQA variant).
    pub label: String,
    /// The full simulation report.
    pub report: SimulationReport,
    /// For Scenario 7: the scripted participant's final satisfaction
    /// (`None` means it departed before the end of the run).
    pub focus_satisfaction: Option<f64>,
}

/// The result of a whole scenario: one entry per technique, on the same
/// population and seed.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Which scenario was run.
    pub id: ScenarioId,
    /// Per-technique results.
    pub results: Vec<TechniqueResult>,
}

impl ScenarioOutcome {
    /// Renders the scenario's comparison table — the textual analogue of the
    /// demo GUI's result panel.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!("Scenario {} — {}", self.id.number(), self.id.title()),
            &[
                "technique",
                "consumer sat",
                "provider sat",
                "mean resp (s)",
                "p95 resp (s)",
                "completed",
                "starved",
                "providers kept",
                "capacity kept",
                "load gini",
                "focus sat",
            ],
        );
        for result in &self.results {
            let report = &result.report;
            table.add_row(&[
                result.label.clone(),
                Table::num(report.final_consumer_satisfaction()),
                Table::num(report.final_provider_satisfaction()),
                Table::num(report.response.mean()),
                Table::num(report.response.p95()),
                report.response.completed().to_string(),
                report.response.starved().to_string(),
                format!(
                    "{}/{}",
                    report.participants.final_providers, report.participants.initial_providers
                ),
                Table::num(report.capacity_retention),
                Table::num(report.load_balance().gini),
                result
                    .focus_satisfaction
                    .map_or_else(|| "-".to_string(), Table::num),
            ]);
        }
        table
    }

    /// Renders every technique's time series as long-format CSV
    /// (`series,time,value`), the analogue of the demo's on-line plots
    /// (Figure 2b).
    #[must_use]
    pub fn series_csv(&self) -> String {
        let mut all = Vec::new();
        for result in &self.results {
            for series in &result.report.series {
                let mut named = series.clone();
                named.name = format!("{}/{}", series.name, result.label);
                all.push(named);
            }
        }
        CsvWriter::render_series(&all)
    }

    /// Looks up the result of a technique by label.
    #[must_use]
    pub fn result_for(&self, label: &str) -> Option<&TechniqueResult> {
        self.results.iter().find(|r| r.label == label)
    }
}

/// A runnable scenario: identifier plus the population and simulation
/// configuration it uses.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which of the seven scenarios this is.
    pub id: ScenarioId,
    /// The BOINC population to generate.
    pub population: PopulationConfig,
    /// The simulation configuration (duration, departures, mediator config).
    pub sim: SimulationConfig,
}

impl Scenario {
    /// The full-size preset used by the benchmark harness
    /// (200 volunteers, 300 virtual seconds).
    #[must_use]
    pub fn new(id: ScenarioId) -> Self {
        Self::sized(id, 200, 300.0, 60.0)
    }

    /// A reduced preset for tests and quick demos
    /// (40 volunteers, 80 virtual seconds).
    #[must_use]
    pub fn quick(id: ScenarioId) -> Self {
        Self::sized(id, 40, 80.0, 10.0)
    }

    /// Builds a preset with explicit scale parameters.
    #[must_use]
    pub fn sized(
        id: ScenarioId,
        volunteers: usize,
        duration: f64,
        arrival_rate_per_project: f64,
    ) -> Self {
        let mut population = PopulationConfig::default()
            .with_volunteers(volunteers)
            .with_arrival_rate(arrival_rate_per_project);
        population.mean_work_units = 1.0;

        let departure = match id {
            ScenarioId::S1 | ScenarioId::S3 | ScenarioId::S5 => DeparturePolicy::Captive,
            ScenarioId::S2 | ScenarioId::S4 | ScenarioId::S6 | ScenarioId::S7 => {
                DeparturePolicy::paper_autonomous()
            }
        };

        // Scenario 5: participants compute their intentions from performance
        // signals only.
        if id == ScenarioId::S5 {
            population = population
                .with_project_behaviour(ProjectBehaviour::ResponseTimeDriven)
                .with_volunteer_strategy(ProviderIntentionStrategy::LoadDriven {
                    acceptable_backlog: 4.0,
                });
        }

        let sim = SimulationConfig {
            duration,
            sample_interval: (duration / 30.0).max(1.0),
            departure,
            ..SimulationConfig::default()
        };

        Self {
            id,
            population,
            sim,
        }
    }

    /// The standard techniques compared by this scenario (Scenario 6 builds
    /// its own SbQA variants instead).
    #[must_use]
    pub fn techniques(&self) -> Vec<AllocationPolicyKind> {
        match self.id {
            ScenarioId::S1 | ScenarioId::S2 => vec![
                AllocationPolicyKind::Capacity,
                AllocationPolicyKind::Economic,
            ],
            ScenarioId::S3 | ScenarioId::S4 | ScenarioId::S5 | ScenarioId::S7 => vec![
                AllocationPolicyKind::SbQA,
                AllocationPolicyKind::Capacity,
                AllocationPolicyKind::Economic,
            ],
            ScenarioId::S6 => Vec::new(),
        }
    }

    /// Runs the scenario and collects one result per technique (or per SbQA
    /// variant for Scenario 6).
    pub fn run(&self) -> SbqaResult<ScenarioOutcome> {
        match self.id {
            ScenarioId::S6 => self.run_adaptability_grid(),
            ScenarioId::S7 => self.run_interactive(),
            _ => self.run_standard(),
        }
    }

    fn build_population(&self) -> BoincPopulation {
        BoincPopulation::generate(&self.population)
    }

    fn run_one(
        &self,
        label: String,
        allocator: Box<dyn sbqa_core::QueryAllocator>,
        population: &BoincPopulation,
        sim: &SimulationConfig,
    ) -> SbqaResult<TechniqueResult> {
        let report = SimulationBuilder::new(sim.clone())
            .allocator(allocator)
            .consumers(population.consumers.iter().cloned())
            .providers(population.providers.iter().cloned())
            .run()?;
        Ok(TechniqueResult {
            label,
            report,
            focus_satisfaction: None,
        })
    }

    fn run_standard(&self) -> SbqaResult<ScenarioOutcome> {
        let population = self.build_population();
        let mut results = Vec::new();
        for kind in self.techniques() {
            let allocator = build_allocator(kind, &self.sim.system, self.sim.seed)?;
            results.push(self.run_one(
                kind.label().to_string(),
                allocator,
                &population,
                &self.sim,
            )?);
        }
        Ok(ScenarioOutcome {
            id: self.id,
            results,
        })
    }

    /// Scenario 6: sweep `kn` (with adaptive ω) and ω (with the default `kn`)
    /// to show how the process adapts to the application.
    fn run_adaptability_grid(&self) -> SbqaResult<ScenarioOutcome> {
        let population = self.build_population();
        let mut results = Vec::new();

        let kn_values = [1usize, 2, 4, 8, 16];
        for kn in kn_values {
            let system = self
                .sim
                .system
                .clone()
                .with_knbest(self.sim.system.knbest_k.max(kn), kn);
            let sim = self.sim.clone().with_system(system.clone());
            let allocator = Box::new(SbqaAllocator::new(system, self.sim.seed)?);
            results.push(self.run_one(
                format!("SbQA[kn={kn},w=adaptive]"),
                allocator,
                &population,
                &sim,
            )?);
        }

        let omega_values = [0.0, 0.25, 0.5, 0.75, 1.0];
        for omega in omega_values {
            let system = self
                .sim
                .system
                .clone()
                .with_omega(OmegaPolicy::Fixed(omega));
            let sim = self.sim.clone().with_system(system.clone());
            let allocator = Box::new(SbqaAllocator::new(system, self.sim.seed)?);
            results.push(self.run_one(
                format!("SbQA[kn={},w={omega:.2}]", self.sim.system.knbest_kn),
                allocator,
                &population,
                &sim,
            )?);
        }

        // A capacity baseline anchors the grid.
        let capacity = build_allocator(
            AllocationPolicyKind::Capacity,
            &self.sim.system,
            self.sim.seed,
        )?;
        results.push(self.run_one(
            AllocationPolicyKind::Capacity.label().to_string(),
            capacity,
            &population,
            &self.sim,
        )?);

        Ok(ScenarioOutcome {
            id: self.id,
            results,
        })
    }

    /// Scenario 7: inject a devoted volunteer and report how each mediation
    /// serves it.
    fn run_interactive(&self) -> SbqaResult<ScenarioOutcome> {
        let mut population = self.build_population();
        let project_ids: Vec<_> = population.projects.iter().map(|p| p.id).collect();
        // The scripted volunteer only wants to work for the *unpopular*
        // project — the objective the load- and price-driven mediations are
        // least likely to honour by accident.
        let beloved = population
            .projects
            .last()
            .map_or(sbqa_types::ConsumerId::new(0), |p| p.id);
        let participant = InteractiveParticipant::devoted_volunteer(9_999, beloved, &project_ids);
        participant.inject(&mut population);

        let mut results = Vec::new();
        for kind in self.techniques() {
            let allocator = build_allocator(kind, &self.sim.system, self.sim.seed)?;
            let mut result =
                self.run_one(kind.label().to_string(), allocator, &population, &self.sim)?;
            result.focus_satisfaction = participant.satisfaction_in(&result.report);
            results.push(result);
        }
        Ok(ScenarioOutcome {
            id: self.id,
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_ids_enumerate_and_describe() {
        assert_eq!(ScenarioId::all().len(), 7);
        for (i, id) in ScenarioId::all().iter().enumerate() {
            assert_eq!(id.number(), i + 1);
            assert!(!id.title().is_empty());
        }
    }

    #[test]
    fn captive_and_autonomous_environments_match_the_paper() {
        for id in [ScenarioId::S1, ScenarioId::S3, ScenarioId::S5] {
            assert!(!Scenario::quick(id).sim.departure.is_autonomous());
        }
        for id in [
            ScenarioId::S2,
            ScenarioId::S4,
            ScenarioId::S6,
            ScenarioId::S7,
        ] {
            assert!(Scenario::quick(id).sim.departure.is_autonomous());
        }
    }

    #[test]
    fn technique_lists_match_the_paper() {
        assert_eq!(Scenario::quick(ScenarioId::S1).techniques().len(), 2);
        assert_eq!(Scenario::quick(ScenarioId::S3).techniques().len(), 3);
        assert!(Scenario::quick(ScenarioId::S6).techniques().is_empty());
    }

    #[test]
    fn scenario_one_runs_and_reports_both_baselines() {
        let outcome = Scenario::quick(ScenarioId::S1).run().unwrap();
        assert_eq!(outcome.id, ScenarioId::S1);
        assert_eq!(outcome.results.len(), 2);
        assert!(outcome.result_for("Capacity").is_some());
        assert!(outcome.result_for("Economic").is_some());
        assert!(outcome.result_for("SbQA").is_none());
        for result in &outcome.results {
            assert!(result.report.queries_issued > 0);
            assert!(result.report.response.completed() > 0);
        }
        let table = outcome.table();
        assert!(table.render().contains("Capacity"));
        let csv = outcome.series_csv();
        assert!(csv.contains("consumer_satisfaction/Capacity"));
    }

    #[test]
    fn scenario_three_includes_sbqa_and_stays_captive() {
        let outcome = Scenario::quick(ScenarioId::S3).run().unwrap();
        assert_eq!(outcome.results.len(), 3);
        for result in &outcome.results {
            assert_eq!(
                result.report.participants.final_providers,
                result.report.participants.initial_providers,
                "captive environments keep every provider"
            );
        }
    }

    #[test]
    fn scenario_seven_reports_the_focus_participant() {
        let outcome = Scenario::quick(ScenarioId::S7).run().unwrap();
        assert_eq!(outcome.results.len(), 3);
        // The focus satisfaction column is present (Some) unless the
        // participant departed under that mediation, which is itself a
        // meaningful outcome.
        assert!(outcome
            .results
            .iter()
            .any(|r| r.focus_satisfaction.is_some() || r.label != "SbQA"));
        let table = outcome.table();
        assert!(table.render().contains("focus sat"));
    }
}
