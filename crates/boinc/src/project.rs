//! BOINC projects (the consumers of the demonstration).

use serde::{Deserialize, Serialize};

use sbqa_core::intention::{ConsumerIntentionStrategy, ConsumerProfile};
use sbqa_sim::ConsumerSpec;
use sbqa_types::{Capability, ConsumerId, Intention};

/// How popular a project is among the volunteer population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProjectKind {
    /// "The majority of providers want to collaborate in this project"
    /// (SETI@home in the demo).
    Popular,
    /// "A great number, but not most, of providers want to collaborate"
    /// (proteins@home).
    Normal,
    /// "Most providers desire to collaborate […] with a small fraction of
    /// computational resources" (Einstein@home).
    Unpopular,
}

impl ProjectKind {
    /// All kinds in the order the demo lists them.
    #[must_use]
    pub const fn all() -> [ProjectKind; 3] {
        [
            ProjectKind::Popular,
            ProjectKind::Normal,
            ProjectKind::Unpopular,
        ]
    }

    /// The demo project name associated with the kind.
    #[must_use]
    pub const fn demo_name(self) -> &'static str {
        match self {
            ProjectKind::Popular => "SETI@home",
            ProjectKind::Normal => "proteins@home",
            ProjectKind::Unpopular => "Einstein@home",
        }
    }

    /// Probability that a volunteer *likes* this project (drawn per
    /// volunteer); the complementary case gives the project a low or negative
    /// preference.
    #[must_use]
    pub const fn enthusiasm_probability(self) -> f64 {
        match self {
            ProjectKind::Popular => 0.8,
            ProjectKind::Normal => 0.5,
            ProjectKind::Unpopular => 0.2,
        }
    }

    /// Preference expressed by an enthusiastic volunteer towards the project.
    #[must_use]
    pub const fn enthusiastic_preference(self) -> f64 {
        match self {
            ProjectKind::Popular => 0.9,
            ProjectKind::Normal => 0.7,
            ProjectKind::Unpopular => 0.5,
        }
    }

    /// Preference expressed by an unenthusiastic volunteer. The unpopular
    /// project is still *tolerated* (small positive fraction of resources),
    /// matching the demo description.
    #[must_use]
    pub const fn reluctant_preference(self) -> f64 {
        match self {
            ProjectKind::Popular => 0.2,
            ProjectKind::Normal => 0.0,
            ProjectKind::Unpopular => -0.4,
        }
    }
}

/// A BOINC project: a consumer that issues replicated work units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// The consumer identity of the project.
    pub id: ConsumerId,
    /// Human-readable name.
    pub name: String,
    /// Popularity class.
    pub kind: ProjectKind,
    /// Capability its work units require (every volunteer that "attached" to
    /// the project advertises it).
    pub capability: Capability,
    /// Work units issued per virtual second.
    pub arrival_rate: f64,
    /// Mean size of a work unit.
    pub mean_work_units: f64,
    /// Result-validation replication factor (`q.n`).
    pub replication: usize,
}

impl Project {
    /// Creates a project of the given kind with the demo defaults.
    #[must_use]
    pub fn demo(id: ConsumerId, kind: ProjectKind, capability: Capability) -> Self {
        Self {
            id,
            name: kind.demo_name().to_string(),
            kind,
            capability,
            arrival_rate: 1.0,
            mean_work_units: 1.0,
            replication: 1,
        }
    }

    /// Overrides the arrival rate (work units per virtual second).
    #[must_use]
    pub fn with_arrival_rate(mut self, rate: f64) -> Self {
        self.arrival_rate = rate;
        self
    }

    /// Overrides the replication factor.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Overrides the mean work-unit size.
    #[must_use]
    pub fn with_mean_work(mut self, work: f64) -> Self {
        self.mean_work_units = work;
        self
    }

    /// Builds the simulator consumer spec for this project.
    ///
    /// `profile` decides how the project ranks volunteers (default:
    /// reputation-like static preferences, neutral by default; Scenario 5
    /// replaces it with a response-time-driven profile).
    #[must_use]
    pub fn to_consumer_spec(&self, profile: ConsumerProfile) -> ConsumerSpec {
        ConsumerSpec::new(
            self.id,
            self.capability,
            self.arrival_rate,
            self.mean_work_units,
            self.replication,
            profile,
        )
    }

    /// The default consumer profile used by the BOINC scenarios: a mild
    /// positive default preference towards volunteers (projects are mostly
    /// happy that *someone* computes for them), refined per volunteer by the
    /// population builder when reputations are assigned.
    #[must_use]
    pub fn default_profile() -> ConsumerProfile {
        ConsumerProfile::new(ConsumerIntentionStrategy::Preference, Intention::new(0.3))
    }

    /// The Scenario 5 profile: the project only cares about response times.
    #[must_use]
    pub fn response_time_profile() -> ConsumerProfile {
        ConsumerProfile::new(
            ConsumerIntentionStrategy::ResponseTimeDriven {
                acceptable_backlog: 2.0,
            },
            Intention::NEUTRAL,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_names_and_probabilities_are_ordered_by_popularity() {
        assert_eq!(ProjectKind::Popular.demo_name(), "SETI@home");
        assert_eq!(ProjectKind::Normal.demo_name(), "proteins@home");
        assert_eq!(ProjectKind::Unpopular.demo_name(), "Einstein@home");
        assert!(
            ProjectKind::Popular.enthusiasm_probability()
                > ProjectKind::Normal.enthusiasm_probability()
        );
        assert!(
            ProjectKind::Normal.enthusiasm_probability()
                > ProjectKind::Unpopular.enthusiasm_probability()
        );
        assert_eq!(ProjectKind::all().len(), 3);
    }

    #[test]
    fn preferences_are_valid_intentions() {
        for kind in ProjectKind::all() {
            assert!((-1.0..=1.0).contains(&kind.enthusiastic_preference()));
            assert!((-1.0..=1.0).contains(&kind.reluctant_preference()));
            assert!(kind.enthusiastic_preference() > kind.reluctant_preference());
        }
    }

    #[test]
    fn builder_overrides_apply_and_spec_conversion_works() {
        let project = Project::demo(ConsumerId::new(1), ProjectKind::Popular, Capability::new(2))
            .with_arrival_rate(3.0)
            .with_replication(2)
            .with_mean_work(0.5);
        assert_eq!(project.arrival_rate, 3.0);
        assert_eq!(project.replication, 2);
        assert_eq!(project.mean_work_units, 0.5);

        let spec = project.to_consumer_spec(Project::default_profile());
        assert_eq!(spec.id, ConsumerId::new(1));
        assert_eq!(
            spec.requirement,
            sbqa_types::CapabilityRequirement::single(Capability::new(2))
        );
        assert_eq!(spec.arrival_rate, 3.0);
        assert_eq!(spec.replication, 2);
    }

    #[test]
    fn replication_is_at_least_one() {
        let project = Project::demo(ConsumerId::new(1), ProjectKind::Normal, Capability::new(0))
            .with_replication(0);
        assert_eq!(project.replication, 1);
    }
}
