//! Result-validation replication.
//!
//! "As providers may be malicious, consumers may create several instances of
//! a query so as to validate results returned by providers." This module
//! captures that sizing decision: given the expected fraction of malicious
//! volunteers and the desired confidence that a majority of the returned
//! results is honest, how many replicas (`q.n`) should a project request?
//!
//! The model is deliberately simple — independent malicious volunteers, a
//! majority vote over replicas — because allocation behaviour, not Byzantine
//! fault tolerance, is what the scenarios study.

use serde::{Deserialize, Serialize};

/// A project's replication policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplicationPolicy {
    /// Always use a fixed number of replicas.
    Fixed(usize),
    /// Choose the smallest odd number of replicas such that the probability
    /// of a malicious majority stays below `failure_probability`, assuming
    /// each replica lands on a malicious volunteer independently with
    /// probability `malicious_fraction`.
    MajorityVote {
        /// Fraction of malicious volunteers in the population.
        malicious_fraction: f64,
        /// Acceptable probability that the vote is corrupted.
        failure_probability: f64,
        /// Upper bound on replicas (resource budget).
        max_replicas: usize,
    },
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy::Fixed(1)
    }
}

impl ReplicationPolicy {
    /// The number of replicas (`q.n`) this policy requests.
    #[must_use]
    pub fn replicas(&self) -> usize {
        match *self {
            ReplicationPolicy::Fixed(n) => n.max(1),
            ReplicationPolicy::MajorityVote {
                malicious_fraction,
                failure_probability,
                max_replicas,
            } => {
                let p = if malicious_fraction.is_finite() {
                    malicious_fraction.clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let target = if failure_probability.is_finite() {
                    failure_probability.clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let max_replicas = max_replicas.max(1);
                if p == 0.0 {
                    return 1;
                }
                if p >= 0.5 {
                    // A majority vote cannot help when most volunteers are
                    // malicious; fall back to the budget cap.
                    return max_replicas;
                }
                let mut n = 1usize;
                while n <= max_replicas {
                    if corrupted_majority_probability(n, p) <= target {
                        return n;
                    }
                    n += 2; // keep the replica count odd so votes cannot tie
                }
                max_replicas
            }
        }
    }
}

/// Probability that at least ⌈(n+1)/2⌉ of `n` independent replicas are
/// malicious when each is malicious with probability `p`.
#[must_use]
pub fn corrupted_majority_probability(n: usize, p: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let p = p.clamp(0.0, 1.0);
    let needed = n / 2 + 1;
    let mut total = 0.0;
    for k in needed..=n {
        total += binomial(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
    }
    total.clamp(0.0, 1.0)
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_policy_returns_at_least_one() {
        assert_eq!(ReplicationPolicy::Fixed(0).replicas(), 1);
        assert_eq!(ReplicationPolicy::Fixed(3).replicas(), 3);
        assert_eq!(ReplicationPolicy::default().replicas(), 1);
    }

    #[test]
    fn corrupted_majority_probability_known_values() {
        // One replica: corrupted with probability p.
        assert!((corrupted_majority_probability(1, 0.1) - 0.1).abs() < 1e-12);
        // Three replicas, p = 0.1: P(≥2 malicious) = 3·0.01·0.9 + 0.001 = 0.028.
        assert!((corrupted_majority_probability(3, 0.1) - 0.028).abs() < 1e-12);
        // No malicious volunteers: never corrupted.
        assert_eq!(corrupted_majority_probability(5, 0.0), 0.0);
        // Zero replicas: trivially corrupted.
        assert_eq!(corrupted_majority_probability(0, 0.1), 1.0);
    }

    #[test]
    fn majority_vote_policy_scales_with_threat() {
        let low_threat = ReplicationPolicy::MajorityVote {
            malicious_fraction: 0.01,
            failure_probability: 0.05,
            max_replicas: 15,
        };
        let high_threat = ReplicationPolicy::MajorityVote {
            malicious_fraction: 0.2,
            failure_probability: 0.01,
            max_replicas: 15,
        };
        assert!(low_threat.replicas() <= high_threat.replicas());
        assert_eq!(low_threat.replicas() % 2, 1, "replica counts stay odd");
    }

    #[test]
    fn majority_vote_handles_degenerate_parameters() {
        // No malicious volunteers: one replica suffices.
        let none = ReplicationPolicy::MajorityVote {
            malicious_fraction: 0.0,
            failure_probability: 0.01,
            max_replicas: 9,
        };
        assert_eq!(none.replicas(), 1);
        // Majority malicious: give up and use the budget cap.
        let hopeless = ReplicationPolicy::MajorityVote {
            malicious_fraction: 0.6,
            failure_probability: 0.01,
            max_replicas: 9,
        };
        assert_eq!(hopeless.replicas(), 9);
        // Impossible target within the budget: capped.
        let strict = ReplicationPolicy::MajorityVote {
            malicious_fraction: 0.4,
            failure_probability: 1e-12,
            max_replicas: 5,
        };
        assert_eq!(strict.replicas(), 5);
        // NaN inputs do not panic.
        let nan = ReplicationPolicy::MajorityVote {
            malicious_fraction: f64::NAN,
            failure_probability: f64::NAN,
            max_replicas: 3,
        };
        assert!(nan.replicas() >= 1);
    }

    proptest! {
        #[test]
        fn prop_probability_in_unit_interval(n in 1usize..20, p in 0.0f64..=1.0) {
            let prob = corrupted_majority_probability(n, p);
            prop_assert!((0.0..=1.0).contains(&prob));
        }

        #[test]
        fn prop_more_replicas_never_hurt_below_half(p in 0.0f64..0.49) {
            // With p < 0.5, growing an odd replica count cannot increase the
            // corruption probability.
            let three = corrupted_majority_probability(3, p);
            let five = corrupted_majority_probability(5, p);
            let seven = corrupted_majority_probability(7, p);
            prop_assert!(five <= three + 1e-12);
            prop_assert!(seven <= five + 1e-12);
        }

        #[test]
        fn prop_policy_respects_budget(p in 0.0f64..=1.0, target in 0.0f64..=1.0, max in 1usize..20) {
            let policy = ReplicationPolicy::MajorityVote {
                malicious_fraction: p,
                failure_probability: target,
                max_replicas: max,
            };
            let n = policy.replicas();
            prop_assert!(n >= 1 && n <= max.max(1));
        }
    }
}
