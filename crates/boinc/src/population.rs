//! Assembly of the full BOINC population: three projects plus a volunteer
//! population, ready to drop into the simulator.

use serde::{Deserialize, Serialize};

use sbqa_core::intention::{ConsumerIntentionStrategy, ConsumerProfile, ProviderIntentionStrategy};
use sbqa_sim::{ConsumerSpec, ProviderSpec, SimRng};
use sbqa_types::{Capability, ConsumerId, Intention};

use crate::project::{Project, ProjectKind};
use crate::replication::ReplicationPolicy;
use crate::volunteer::{VolunteerConfig, VolunteerGenerator};

/// How the projects (consumers) compute their intentions towards volunteers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProjectBehaviour {
    /// Reputation-driven static preferences (the default demo behaviour):
    /// each volunteer gets a reputation drawn at population-build time and
    /// every project prefers reputable volunteers.
    #[default]
    ReputationDriven,
    /// The Scenario 5 behaviour: projects only care about response times.
    ResponseTimeDriven,
}

/// Parameters of the generated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of volunteers.
    pub volunteers: usize,
    /// Volunteer generation parameters (capacity range, hybrid weights,
    /// malicious fraction).
    pub volunteer: VolunteerConfig,
    /// Work units issued per virtual second, per project.
    pub arrival_rate_per_project: f64,
    /// Mean work-unit size, per project.
    pub mean_work_units: f64,
    /// Replication policy used by every project.
    pub replication: ReplicationPolicy,
    /// How projects compute their intentions.
    pub project_behaviour: ProjectBehaviour,
    /// Overrides the volunteers' intention strategy (None keeps the default
    /// hybrid preference/load behaviour).
    pub volunteer_strategy: Option<ProviderIntentionStrategy>,
    /// Seed for the population draw (independent from the simulation seed).
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            volunteers: 200,
            volunteer: VolunteerConfig::default(),
            arrival_rate_per_project: 20.0,
            mean_work_units: 0.2,
            replication: ReplicationPolicy::Fixed(1),
            project_behaviour: ProjectBehaviour::ReputationDriven,
            volunteer_strategy: None,
            seed: 7,
        }
    }
}

impl PopulationConfig {
    /// Builder-style volunteer-count override.
    #[must_use]
    pub fn with_volunteers(mut self, volunteers: usize) -> Self {
        self.volunteers = volunteers;
        self
    }

    /// Builder-style arrival-rate override.
    #[must_use]
    pub fn with_arrival_rate(mut self, rate: f64) -> Self {
        self.arrival_rate_per_project = rate;
        self
    }

    /// Builder-style project-behaviour override.
    #[must_use]
    pub fn with_project_behaviour(mut self, behaviour: ProjectBehaviour) -> Self {
        self.project_behaviour = behaviour;
        self
    }

    /// Builder-style volunteer-strategy override.
    #[must_use]
    pub fn with_volunteer_strategy(mut self, strategy: ProviderIntentionStrategy) -> Self {
        self.volunteer_strategy = Some(strategy);
        self
    }

    /// Builder-style replication override.
    #[must_use]
    pub fn with_replication(mut self, replication: ReplicationPolicy) -> Self {
        self.replication = replication;
        self
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fully generated population.
#[derive(Debug, Clone)]
pub struct BoincPopulation {
    /// The three demo projects.
    pub projects: Vec<Project>,
    /// Consumer specs for the simulator, one per project.
    pub consumers: Vec<ConsumerSpec>,
    /// Provider specs for the simulator, one per volunteer.
    pub providers: Vec<ProviderSpec>,
}

impl BoincPopulation {
    /// Generates the demo population: SETI@home (popular), proteins@home
    /// (normal) and Einstein@home (unpopular) plus `config.volunteers`
    /// volunteers attached to all three.
    #[must_use]
    pub fn generate(config: &PopulationConfig) -> Self {
        let mut rng = SimRng::new(config.seed);
        let replication = config.replication.replicas();

        let projects: Vec<Project> = ProjectKind::all()
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                Project::demo(ConsumerId::new(i as u64), *kind, Capability::new(i as u8))
                    .with_arrival_rate(config.arrival_rate_per_project)
                    .with_mean_work(config.mean_work_units)
                    .with_replication(replication)
            })
            .collect();

        let generator = VolunteerGenerator::new(config.volunteer);
        let providers = generator.generate_population(
            1_000,
            config.volunteers,
            &projects,
            config.volunteer_strategy,
            &mut rng,
        );

        // Assign every volunteer a reputation; reputation-driven projects use
        // it as their preference towards that volunteer.
        let reputations: Vec<(sbqa_types::ProviderId, Intention)> = providers
            .iter()
            .map(|p| (p.id, Intention::new(rng.uniform_in(-0.2, 1.0))))
            .collect();

        let consumers: Vec<ConsumerSpec> = projects
            .iter()
            .map(|project| {
                let profile = match config.project_behaviour {
                    ProjectBehaviour::ReputationDriven => {
                        let mut profile = ConsumerProfile::new(
                            ConsumerIntentionStrategy::Preference,
                            Intention::new(0.3),
                        );
                        for (provider, reputation) in &reputations {
                            profile.set_preference(*provider, *reputation);
                        }
                        profile
                    }
                    ProjectBehaviour::ResponseTimeDriven => Project::response_time_profile(),
                };
                project.to_consumer_spec(profile)
            })
            .collect();

        Self {
            projects,
            consumers,
            providers,
        }
    }

    /// Total computational capacity donated by the volunteers.
    #[must_use]
    pub fn total_capacity(&self) -> f64 {
        self.providers.iter().map(|p| p.capacity).sum()
    }

    /// Aggregate query arrival rate across projects.
    #[must_use]
    pub fn total_arrival_rate(&self) -> f64 {
        self.consumers.iter().map(|c| c.arrival_rate).sum()
    }

    /// Mean offered load: work units requested per unit of donated capacity
    /// per virtual second (values near or above 1 mean the system is
    /// saturated).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        let capacity = self.total_capacity();
        if capacity <= 0.0 {
            return 0.0;
        }
        let work_rate: f64 = self
            .consumers
            .iter()
            .map(|c| c.arrival_rate * c.mean_work_units * c.replication as f64)
            .sum();
        work_rate / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_three_projects_and_requested_volunteers() {
        let population =
            BoincPopulation::generate(&PopulationConfig::default().with_volunteers(50));
        assert_eq!(population.projects.len(), 3);
        assert_eq!(population.consumers.len(), 3);
        assert_eq!(population.providers.len(), 50);
        assert!(population.total_capacity() > 0.0);
        assert!(population.total_arrival_rate() > 0.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = PopulationConfig::default().with_volunteers(20).with_seed(9);
        let a = BoincPopulation::generate(&config);
        let b = BoincPopulation::generate(&config);
        assert_eq!(a.providers.len(), b.providers.len());
        for (pa, pb) in a.providers.iter().zip(b.providers.iter()) {
            assert_eq!(pa.id, pb.id);
            assert_eq!(pa.capacity, pb.capacity);
        }
        let c = BoincPopulation::generate(&config.clone().with_seed(10));
        let identical = a
            .providers
            .iter()
            .zip(c.providers.iter())
            .all(|(x, y)| x.capacity == y.capacity);
        assert!(!identical, "different seeds should differ somewhere");
    }

    #[test]
    fn reputation_driven_projects_have_per_volunteer_preferences() {
        let population =
            BoincPopulation::generate(&PopulationConfig::default().with_volunteers(10));
        for consumer in &population.consumers {
            assert_eq!(consumer.profile.explicit_preferences(), 10);
        }
    }

    #[test]
    fn response_time_behaviour_skips_reputation_preferences() {
        let population = BoincPopulation::generate(
            &PopulationConfig::default()
                .with_volunteers(10)
                .with_project_behaviour(ProjectBehaviour::ResponseTimeDriven),
        );
        for consumer in &population.consumers {
            assert_eq!(consumer.profile.explicit_preferences(), 0);
            assert!(matches!(
                consumer.profile.strategy,
                ConsumerIntentionStrategy::ResponseTimeDriven { .. }
            ));
        }
    }

    #[test]
    fn replication_policy_propagates_to_projects() {
        let population = BoincPopulation::generate(
            &PopulationConfig::default()
                .with_volunteers(5)
                .with_replication(ReplicationPolicy::Fixed(3)),
        );
        for consumer in &population.consumers {
            assert_eq!(consumer.replication, 3);
        }
        for project in &population.projects {
            assert_eq!(project.replication, 3);
        }
    }

    #[test]
    fn offered_load_scales_with_arrival_rate() {
        let base = PopulationConfig::default().with_volunteers(50);
        let light = BoincPopulation::generate(&base.clone().with_arrival_rate(1.0));
        let heavy = BoincPopulation::generate(&base.with_arrival_rate(50.0));
        assert!(heavy.offered_load() > light.offered_load());
    }

    #[test]
    fn volunteer_strategy_override_reaches_every_provider() {
        let population = BoincPopulation::generate(
            &PopulationConfig::default()
                .with_volunteers(8)
                .with_volunteer_strategy(ProviderIntentionStrategy::LoadDriven {
                    acceptable_backlog: 2.0,
                }),
        );
        for provider in &population.providers {
            assert!(matches!(
                provider.profile.strategy,
                ProviderIntentionStrategy::LoadDriven { .. }
            ));
        }
    }
}
