//! Volunteer (provider) generation.
//!
//! Volunteers donate heterogeneous computational resources and hold
//! per-project preferences drawn from the projects' popularity classes: a
//! popular project is liked by most volunteers, an unpopular one by few. The
//! generated [`ProviderSpec`]s carry those preferences in their intention
//! profile so any allocation technique runs against the same population.

use serde::{Deserialize, Serialize};

use sbqa_core::intention::{ProviderIntentionStrategy, ProviderProfile};
use sbqa_sim::{ProviderSpec, SimRng};
use sbqa_types::{CapabilitySet, Intention, ProviderId};

use crate::project::Project;

/// Parameters of the volunteer population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolunteerConfig {
    /// Lowest volunteer capacity (work units per virtual second).
    pub min_capacity: f64,
    /// Highest volunteer capacity.
    pub max_capacity: f64,
    /// Weight of static preferences in the volunteers' hybrid intention
    /// strategy (`1.0` = pure preference, `0.0` = pure load).
    pub preference_weight: f64,
    /// Backlog (in virtual seconds) a volunteer considers acceptable before
    /// its load-driven component starts refusing work.
    pub acceptable_backlog: f64,
    /// Fraction of volunteers that are malicious (they return wrong results,
    /// which is why projects replicate work units). Malicious volunteers
    /// behave identically for allocation purposes.
    pub malicious_fraction: f64,
}

impl Default for VolunteerConfig {
    fn default() -> Self {
        Self {
            min_capacity: 0.5,
            max_capacity: 4.0,
            preference_weight: 0.7,
            acceptable_backlog: 4.0,
            malicious_fraction: 0.05,
        }
    }
}

/// Generates volunteers with preferences drawn from project popularity.
#[derive(Debug, Clone)]
pub struct VolunteerGenerator {
    config: VolunteerConfig,
}

impl VolunteerGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(config: VolunteerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &VolunteerConfig {
        &self.config
    }

    /// Generates one volunteer attached to every given project.
    ///
    /// The volunteer advertises the union of the projects' capabilities (in
    /// BOINC terms, it installed every project's application), has a capacity
    /// drawn uniformly from the configured range, and holds a preference per
    /// project drawn from the project's popularity class.
    #[must_use]
    pub fn generate(
        &self,
        id: ProviderId,
        projects: &[Project],
        strategy: Option<ProviderIntentionStrategy>,
        rng: &mut SimRng,
    ) -> ProviderSpec {
        let strategy = strategy.unwrap_or(ProviderIntentionStrategy::Hybrid {
            preference_weight: self.config.preference_weight,
            acceptable_backlog: self.config.acceptable_backlog,
        });
        let mut profile = ProviderProfile::new(strategy, Intention::NEUTRAL);

        let mut capabilities = CapabilitySet::new();
        for project in projects {
            capabilities.insert(project.capability);
            let enthusiastic = rng.chance(project.kind.enthusiasm_probability());
            let base = if enthusiastic {
                project.kind.enthusiastic_preference()
            } else {
                project.kind.reluctant_preference()
            };
            // Small per-volunteer jitter so the population is not a set of
            // identical clones.
            let jitter = rng.uniform_in(-0.1, 0.1);
            profile.set_consumer_preference(project.id, Intention::new(base + jitter));
        }

        let capacity = rng.uniform_in(self.config.min_capacity, self.config.max_capacity);
        ProviderSpec::new(id, capabilities, capacity, profile)
    }

    /// Generates `count` volunteers with ids starting at `first_id`.
    #[must_use]
    pub fn generate_population(
        &self,
        first_id: u64,
        count: usize,
        projects: &[Project],
        strategy: Option<ProviderIntentionStrategy>,
        rng: &mut SimRng,
    ) -> Vec<ProviderSpec> {
        (0..count)
            .map(|i| {
                self.generate(
                    ProviderId::new(first_id + i as u64),
                    projects,
                    strategy,
                    rng,
                )
            })
            .collect()
    }

    /// `true` if a volunteer drawn right now would be malicious.
    #[must_use]
    pub fn draw_malicious(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.config.malicious_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::ProjectKind;
    use sbqa_types::{Capability, ConsumerId};

    fn projects() -> Vec<Project> {
        vec![
            Project::demo(ConsumerId::new(0), ProjectKind::Popular, Capability::new(0)),
            Project::demo(ConsumerId::new(1), ProjectKind::Normal, Capability::new(1)),
            Project::demo(
                ConsumerId::new(2),
                ProjectKind::Unpopular,
                Capability::new(2),
            ),
        ]
    }

    #[test]
    fn generated_volunteers_cover_all_project_capabilities() {
        let generator = VolunteerGenerator::new(VolunteerConfig::default());
        let mut rng = SimRng::new(1);
        let spec = generator.generate(ProviderId::new(100), &projects(), None, &mut rng);
        for p in projects() {
            assert!(spec.capabilities.contains(p.capability));
        }
        assert!(spec.capacity >= 0.5 && spec.capacity <= 4.0);
    }

    #[test]
    fn popularity_shapes_mean_preferences() {
        let generator = VolunteerGenerator::new(VolunteerConfig::default());
        let mut rng = SimRng::new(2);
        let projects = projects();
        let population = generator.generate_population(100, 400, &projects, None, &mut rng);

        // Measure the mean preference per project by probing the profiles
        // with a query from each project on an idle volunteer (pure
        // preference strategy would be cleaner, but the hybrid profile at
        // zero backlog blends with a +1 load signal, preserving order).
        let mean_pref = |project: &Project| -> f64 {
            population
                .iter()
                .map(|v| {
                    let q = sbqa_types::Query::builder(
                        sbqa_types::QueryId::new(0),
                        project.id,
                        project.capability,
                    )
                    .build();
                    v.profile.intention_for(&q, 0.0).value()
                })
                .sum::<f64>()
                / population.len() as f64
        };

        let popular = mean_pref(&projects[0]);
        let normal = mean_pref(&projects[1]);
        let unpopular = mean_pref(&projects[2]);
        assert!(
            popular > normal && normal > unpopular,
            "expected popularity ordering, got {popular:.3} / {normal:.3} / {unpopular:.3}"
        );
    }

    #[test]
    fn population_ids_are_sequential_and_unique() {
        let generator = VolunteerGenerator::new(VolunteerConfig::default());
        let mut rng = SimRng::new(3);
        let population = generator.generate_population(500, 20, &projects(), None, &mut rng);
        let ids: Vec<u64> = population.iter().map(|v| v.id.raw()).collect();
        let expected: Vec<u64> = (500..520).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn explicit_strategy_overrides_default_hybrid() {
        let generator = VolunteerGenerator::new(VolunteerConfig::default());
        let mut rng = SimRng::new(4);
        let spec = generator.generate(
            ProviderId::new(1),
            &projects(),
            Some(ProviderIntentionStrategy::LoadDriven {
                acceptable_backlog: 1.0,
            }),
            &mut rng,
        );
        assert!(matches!(
            spec.profile.strategy,
            ProviderIntentionStrategy::LoadDriven { .. }
        ));
    }

    #[test]
    fn malicious_fraction_is_respected() {
        let generator = VolunteerGenerator::new(VolunteerConfig {
            malicious_fraction: 0.3,
            ..VolunteerConfig::default()
        });
        let mut rng = SimRng::new(5);
        let n = 10_000;
        let malicious = (0..n)
            .filter(|_| generator.draw_malicious(&mut rng))
            .count();
        let fraction = malicious as f64 / n as f64;
        assert!((fraction - 0.3).abs() < 0.02, "fraction {fraction}");
        assert_eq!(generator.config().malicious_fraction, 0.3);
    }
}
