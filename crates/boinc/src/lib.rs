//! # sbqa-boinc
//!
//! The BOINC-shaped volunteer-computing workload used by the paper's
//! demonstration, and the seven evaluation scenarios built on top of it.
//!
//! The demo models three research projects as consumers:
//!
//! * a **popular** one (SETI@home): "the majority of providers want to
//!   collaborate in this project",
//! * a **normal** one (proteins@home): "a great number, but not most, of
//!   providers want to collaborate",
//! * an **unpopular** one (Einstein@home): "most providers desire to
//!   collaborate […] with a small fraction of computational resources",
//!
//! and a population of volunteers (providers) that donate heterogeneous
//! computational resources and hold preferences over the projects. Queries
//! are independent work units, optionally replicated for result validation
//! because volunteers may be malicious.
//!
//! [`scenarios`] packages the seven demo scenarios as runnable experiment
//! presets; the `sbqa-bench` binaries and the examples are thin wrappers
//! around them.

#![forbid(unsafe_code)]

pub mod interactive;
pub mod population;
pub mod project;
pub mod replication;
pub mod scenarios;
pub mod volunteer;

pub use interactive::{InteractiveParticipant, InteractiveRole};
pub use population::{BoincPopulation, PopulationConfig};
pub use project::{Project, ProjectKind};
pub use replication::ReplicationPolicy;
pub use scenarios::{Scenario, ScenarioId, ScenarioOutcome, TechniqueResult};
pub use volunteer::{VolunteerConfig, VolunteerGenerator};
