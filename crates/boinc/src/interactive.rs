//! The "play a BOINC participant" scenario support (Scenario 7).
//!
//! In the demo, people in the audience set their own preferences and watch
//! how the different mediations treat them. The programmatic equivalent is an
//! [`InteractiveParticipant`]: a single scripted consumer or provider with
//! explicit preferences, injected into an otherwise ordinary population. The
//! scenario then reports how well each mediation served *that* participant —
//! the paper's claim being that only the SQLB mediation (used by SbQA) lets
//! it reach its objectives regardless of what those objectives are.

use serde::{Deserialize, Serialize};

use sbqa_core::intention::{
    ConsumerIntentionStrategy, ConsumerProfile, ProviderIntentionStrategy, ProviderProfile,
};
use sbqa_sim::{ConsumerSpec, ProviderSpec, SimulationReport};
use sbqa_types::{Capability, CapabilitySet, ConsumerId, Intention, ProviderId};

use crate::population::BoincPopulation;
use crate::project::Project;

/// Which side of the market the scripted participant plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractiveRole {
    /// The participant is a volunteer (provider).
    Provider,
    /// The participant is a project (consumer).
    Consumer,
}

/// A scripted participant with explicit preferences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveParticipant {
    /// Which side it plays.
    pub role: InteractiveRole,
    /// Identity it will use inside the simulation.
    pub id: u64,
    /// Preferences towards the three projects (for a provider) — project
    /// consumer-id to intention.
    pub project_preferences: Vec<(ConsumerId, Intention)>,
    /// Capacity donated (providers only).
    pub capacity: f64,
    /// Query arrival rate (consumers only).
    pub arrival_rate: f64,
}

impl InteractiveParticipant {
    /// A volunteer that only wants to work for one specific project and
    /// refuses everything else — the sharpest objective a demo attendee can
    /// set, and the one load-oblivious baselines serve worst.
    #[must_use]
    pub fn devoted_volunteer(id: u64, beloved_project: ConsumerId, others: &[ConsumerId]) -> Self {
        let mut prefs = vec![(beloved_project, Intention::MAX)];
        for other in others {
            if *other != beloved_project {
                prefs.push((*other, Intention::MIN));
            }
        }
        Self {
            role: InteractiveRole::Provider,
            id,
            project_preferences: prefs,
            capacity: 2.0,
            arrival_rate: 0.0,
        }
    }

    /// A project that only trusts one specific volunteer population segment
    /// is modelled more simply as a consumer with strong default distrust;
    /// its objective is to get its queries answered by providers it rates
    /// highly.
    #[must_use]
    pub fn picky_project(id: u64, arrival_rate: f64) -> Self {
        Self {
            role: InteractiveRole::Consumer,
            id,
            project_preferences: Vec::new(),
            capacity: 0.0,
            arrival_rate,
        }
    }

    /// The provider id this participant uses (providers only).
    #[must_use]
    pub fn provider_id(&self) -> ProviderId {
        ProviderId::new(self.id)
    }

    /// The consumer id this participant uses (consumers only).
    #[must_use]
    pub fn consumer_id(&self) -> ConsumerId {
        ConsumerId::new(self.id)
    }

    /// Injects the participant into a generated population.
    ///
    /// Providers are appended to the volunteer list with a *pure preference*
    /// intention strategy (their stated objective is exactly their
    /// preference, un-blended with load); consumers are appended as an extra
    /// project-like query source with a neutral reputation profile.
    pub fn inject(&self, population: &mut BoincPopulation) {
        match self.role {
            InteractiveRole::Provider => {
                let mut profile =
                    ProviderProfile::new(ProviderIntentionStrategy::Preference, Intention::MIN);
                for (project, preference) in &self.project_preferences {
                    profile.set_consumer_preference(*project, *preference);
                }
                let capabilities: CapabilitySet =
                    population.projects.iter().map(|p| p.capability).collect();
                population.providers.push(ProviderSpec::new(
                    self.provider_id(),
                    capabilities,
                    self.capacity,
                    profile,
                ));
            }
            InteractiveRole::Consumer => {
                let capability = population
                    .projects
                    .first()
                    .map_or(Capability::new(0), |p| p.capability);
                let profile = ConsumerProfile::new(
                    ConsumerIntentionStrategy::Preference,
                    Intention::new(0.2),
                );
                population.consumers.push(ConsumerSpec::new(
                    self.consumer_id(),
                    capability,
                    self.arrival_rate,
                    Project::demo(
                        self.consumer_id(),
                        crate::project::ProjectKind::Normal,
                        capability,
                    )
                    .mean_work_units,
                    1,
                    profile,
                ));
            }
        }
    }

    /// Reads this participant's final satisfaction out of a simulation
    /// report. `None` means the participant departed before the end (which,
    /// for the purposes of Scenario 7, is the strongest possible failure of
    /// the mediation).
    #[must_use]
    pub fn satisfaction_in(&self, report: &SimulationReport) -> Option<f64> {
        match self.role {
            InteractiveRole::Provider => report.provider_satisfaction_of(self.provider_id()),
            InteractiveRole::Consumer => report.consumer_satisfaction_of(self.consumer_id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn devoted_volunteer_loves_one_project_and_rejects_the_rest() {
        let participant = InteractiveParticipant::devoted_volunteer(
            9_999,
            ConsumerId::new(2),
            &[ConsumerId::new(0), ConsumerId::new(1), ConsumerId::new(2)],
        );
        assert_eq!(participant.role, InteractiveRole::Provider);
        assert_eq!(participant.project_preferences.len(), 3);
        assert_eq!(
            participant.project_preferences[0],
            (ConsumerId::new(2), Intention::MAX)
        );
        assert!(participant
            .project_preferences
            .iter()
            .filter(|(id, _)| *id != ConsumerId::new(2))
            .all(|(_, i)| *i == Intention::MIN));
    }

    #[test]
    fn injection_appends_the_right_kind_of_participant() {
        let mut population =
            BoincPopulation::generate(&PopulationConfig::default().with_volunteers(10));
        let providers_before = population.providers.len();
        let consumers_before = population.consumers.len();

        let volunteer = InteractiveParticipant::devoted_volunteer(
            9_999,
            population.projects[2].id,
            &population.projects.iter().map(|p| p.id).collect::<Vec<_>>(),
        );
        volunteer.inject(&mut population);
        assert_eq!(population.providers.len(), providers_before + 1);
        let injected = population.providers.last().unwrap();
        assert_eq!(injected.id, ProviderId::new(9_999));
        // The injected volunteer can serve every project.
        for project in &population.projects {
            assert!(injected.capabilities.contains(project.capability));
        }

        let project = InteractiveParticipant::picky_project(8_888, 2.0);
        project.inject(&mut population);
        assert_eq!(population.consumers.len(), consumers_before + 1);
        assert_eq!(
            population.consumers.last().unwrap().id,
            ConsumerId::new(8_888)
        );
    }

    #[test]
    fn satisfaction_lookup_dispatches_on_role() {
        use sbqa_metrics::ResponseTimeStats;
        use sbqa_satisfaction::SatisfactionAnalysis;

        let mut population =
            BoincPopulation::generate(&PopulationConfig::default().with_volunteers(5));
        let volunteer = InteractiveParticipant::devoted_volunteer(
            9_999,
            population.projects[0].id,
            &population.projects.iter().map(|p| p.id).collect::<Vec<_>>(),
        );
        volunteer.inject(&mut population);

        // Build a fake report with that provider present.
        let report = SimulationReport {
            technique: "SbQA".into(),
            duration: 1.0,
            seed: 0,
            queries_issued: 0,
            response: ResponseTimeStats::new(),
            satisfaction: SatisfactionAnalysis::new("SbQA"),
            queries_per_provider: vec![],
            provider_capacities: vec![],
            participants: Default::default(),
            capacity_retention: 1.0,
            series: vec![],
            consumer_final_satisfaction: vec![],
            provider_final_satisfaction: vec![(ProviderId::new(9_999), 0.7)],
            plan_cache: Default::default(),
        };
        assert_eq!(volunteer.satisfaction_in(&report), Some(0.7));
        let absent =
            InteractiveParticipant::devoted_volunteer(1_234, population.projects[0].id, &[]);
        assert_eq!(absent.satisfaction_in(&report), None);
    }
}
