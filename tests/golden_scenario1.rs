//! Golden-output regression test for `scenario1 --quick --seed 42`.
//!
//! Pins the selection counts and mean satisfaction produced by the paper's
//! first demonstration scenario so that refactors of the allocation engine
//! (registry layout, KnBest draw, scratch reuse, batching) provably preserve
//! observable behavior. If a change legitimately alters the allocation
//! trajectory — e.g. a different RNG consumption pattern — these constants
//! must be re-pinned deliberately, with the change called out in review.

use sbqa::boinc::{Scenario, ScenarioId};

/// Expected per-technique outcomes: (label, queries issued, completed,
/// queries performed across providers, mean consumer satisfaction, mean
/// provider satisfaction).
const GOLDEN: &[(&str, u64, u64, u64, f64, f64)] = &[
    ("Capacity", 2447, 2422, 2423, 0.748368046577, 0.747714129276),
    ("Economic", 2447, 2431, 2432, 0.822142341096, 0.800008051693),
];

fn quick_seeded_scenario1() -> Scenario {
    // Mirrors `scenario1 --quick --seed 42` (the harness derives the
    // population seed as seed + 1).
    let mut scenario = Scenario::quick(ScenarioId::S1);
    scenario.sim = scenario.sim.clone().with_seed(42);
    scenario.population = scenario.population.clone().with_seed(43);
    scenario
}

#[test]
fn scenario1_quick_seed42_matches_golden_outputs() {
    let outcome = quick_seeded_scenario1().run().unwrap();
    // On drift, this dump is the replacement for the GOLDEN table.
    for result in &outcome.results {
        let report = &result.report;
        let total_performed: u64 = report.queries_per_provider.iter().map(|(_, n)| n).sum();
        println!(
            "(\"{}\", {}, {}, {}, {:.12}, {:.12}),",
            result.label,
            report.queries_issued,
            report.response.completed(),
            total_performed,
            report.satisfaction.mean_consumer_satisfaction(),
            report.satisfaction.mean_provider_satisfaction(),
        );
    }
    assert_eq!(outcome.results.len(), GOLDEN.len());

    for (result, golden) in outcome.results.iter().zip(GOLDEN) {
        let (label, issued, completed, performed, consumer_sat, provider_sat) = *golden;
        let report = &result.report;
        let total_performed: u64 = report.queries_per_provider.iter().map(|(_, n)| n).sum();
        assert_eq!(result.label, label);
        assert_eq!(report.queries_issued, issued, "{label}: queries issued");
        assert_eq!(report.response.completed(), completed, "{label}: completed");
        assert_eq!(total_performed, performed, "{label}: selection counts");
        assert!(
            (report.satisfaction.mean_consumer_satisfaction() - consumer_sat).abs() < 1e-9,
            "{label}: mean consumer satisfaction drifted to {}",
            report.satisfaction.mean_consumer_satisfaction()
        );
        assert!(
            (report.satisfaction.mean_provider_satisfaction() - provider_sat).abs() < 1e-9,
            "{label}: mean provider satisfaction drifted to {}",
            report.satisfaction.mean_provider_satisfaction()
        );
    }
}

#[test]
fn scenario1_quick_seed42_is_reproducible() {
    let a = quick_seeded_scenario1().run().unwrap();
    let b = quick_seeded_scenario1().run().unwrap();
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.report.queries_issued, rb.report.queries_issued);
        assert_eq!(
            ra.report.response.completed(),
            rb.report.response.completed()
        );
        assert_eq!(
            ra.report.satisfaction.mean_provider_satisfaction(),
            rb.report.satisfaction.mean_provider_satisfaction()
        );
    }
}
