//! Integration tests for the satisfaction model used across allocation
//! techniques (the Scenario 1 claim: the model analyses *any* technique) and
//! for the paper's worked equations on realistic mediation flows.

use sbqa::core::{Mediator, StaticIntentions};
use sbqa::satisfaction::{SatisfactionRegistry, SatisfactionSnapshot};
use sbqa::types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, Satisfaction,
    SystemConfig, VirtualTime,
};

fn caps() -> CapabilitySet {
    CapabilitySet::singleton(Capability::new(0))
}

fn query(id: u64, consumer: u64, replication: usize) -> Query {
    Query::builder(
        QueryId::new(id),
        ConsumerId::new(consumer),
        Capability::new(0),
    )
    .replication(replication)
    .build()
}

#[test]
fn definition_one_and_two_compose_through_the_mediator() {
    // One consumer, two providers; the consumer likes provider 0 (+1) and is
    // neutral about provider 1; providers are enthusiastic (+1) and
    // reluctant (-0.5) respectively.
    let config = SystemConfig::default().with_knbest(4, 2);
    let mut mediator = Mediator::sbqa(config, 1).unwrap();
    mediator.register_provider(ProviderId::new(0), caps(), 1.0);
    mediator.register_provider(ProviderId::new(1), caps(), 1.0);
    mediator.register_consumer(ConsumerId::new(7));

    let mut intentions = StaticIntentions::new();
    intentions.set_consumer_intention(ProviderId::new(0), Intention::new(1.0));
    intentions.set_consumer_intention(ProviderId::new(1), Intention::new(0.0));
    intentions.set_provider_intention(ProviderId::new(0), Intention::new(1.0));
    intentions.set_provider_intention(ProviderId::new(1), Intention::new(-0.5));

    // Replication 2: both providers perform the query.
    let outcome = mediator.submit(&query(1, 7, 2), &intentions).unwrap();
    assert_eq!(outcome.selected().len(), 2);

    // Definition 1: δs(c, q) = ((1+1)/2 + (0+1)/2) / 2 = 0.75.
    let consumer_sat = mediator
        .satisfaction()
        .consumer_satisfaction(ConsumerId::new(7));
    assert!((consumer_sat.value() - 0.75).abs() < 1e-9);

    // Definition 2: provider 0 performed a query it wanted (+1) -> 1.0;
    // provider 1 performed a query it disliked (-0.5) -> 0.25.
    assert!(
        (mediator
            .satisfaction()
            .provider_satisfaction(ProviderId::new(0))
            .value()
            - 1.0)
            .abs()
            < 1e-9
    );
    assert!(
        (mediator
            .satisfaction()
            .provider_satisfaction(ProviderId::new(1))
            .value()
            - 0.25)
            .abs()
            < 1e-9
    );
}

#[test]
fn satisfaction_registry_analyses_any_allocation_principle() {
    // Feed the same mediation history shape into the registry as if it came
    // from three different techniques; the registry does not care where the
    // decisions came from (Scenario 1's point).
    let mut by_load = SatisfactionRegistry::new(20);
    let mut by_price = SatisfactionRegistry::new(20);
    let mut by_interest = SatisfactionRegistry::new(20);

    for q in 0..20u64 {
        // The "load" technique always picks provider 0, the "price" technique
        // provider 1, the "interest" technique the provider the consumer
        // actually likes (provider 2).
        by_load.record_mediation(
            QueryId::new(q),
            ConsumerId::new(1),
            1,
            &[(ProviderId::new(0), Intention::new(-0.2))],
            &[(ProviderId::new(0), Intention::new(-0.5), true)],
        );
        by_price.record_mediation(
            QueryId::new(q),
            ConsumerId::new(1),
            1,
            &[(ProviderId::new(1), Intention::new(0.1))],
            &[(ProviderId::new(1), Intention::new(0.0), true)],
        );
        by_interest.record_mediation(
            QueryId::new(q),
            ConsumerId::new(1),
            1,
            &[(ProviderId::new(2), Intention::new(0.9))],
            &[(ProviderId::new(2), Intention::new(0.8), true)],
        );
    }

    let at = VirtualTime::new(1.0);
    let load_snap = SatisfactionSnapshot::capture(&by_load, at, 0.5, 0.35);
    let price_snap = SatisfactionSnapshot::capture(&by_price, at, 0.5, 0.35);
    let interest_snap = SatisfactionSnapshot::capture(&by_interest, at, 0.5, 0.35);

    // The model ranks the techniques by how well they serve interests,
    // regardless of their internal principle.
    assert!(interest_snap.consumers.mean > price_snap.consumers.mean);
    assert!(price_snap.consumers.mean > load_snap.consumers.mean);
    assert!(interest_snap.providers.mean > load_snap.providers.mean);
}

#[test]
fn omega_self_adapts_towards_the_dissatisfied_side_over_a_mediation_stream() {
    // Providers keep being handed queries they dislike; the consumer is happy.
    // Equation 2 must push ω towards 1 (provider side) as the run progresses.
    let config = SystemConfig::default().with_knbest(4, 4);
    let mut mediator = Mediator::sbqa(config, 3).unwrap();
    for p in 0..4u64 {
        mediator.register_provider(ProviderId::new(p), caps(), 1.0);
    }
    mediator.register_consumer(ConsumerId::new(1));

    let intentions =
        StaticIntentions::new().with_defaults(Intention::new(0.9), Intention::new(-0.8));

    let mut omegas = Vec::new();
    for q in 0..30u64 {
        let outcome = mediator.submit(&query(q, 1, 1), &intentions).unwrap();
        omegas.push(outcome.decision.omega.unwrap());
    }
    let early: f64 = omegas[..5].iter().sum::<f64>() / 5.0;
    let late: f64 = omegas[omegas.len() - 5..].iter().sum::<f64>() / 5.0;
    assert!(
        late > early,
        "omega should drift towards the dissatisfied providers: early {early:.3}, late {late:.3}"
    );
    assert!(late > 0.7, "late omega {late:.3}");
}

#[test]
fn departure_thresholds_of_the_paper_are_meaningful_for_the_model() {
    // A provider performing only disliked queries converges below the 0.35
    // departure threshold; one performing liked queries stays above it.
    let mut registry = SatisfactionRegistry::new(10);
    for q in 0..10u64 {
        registry.record_mediation(
            QueryId::new(q),
            ConsumerId::new(1),
            1,
            &[(ProviderId::new(0), Intention::new(0.9))],
            &[
                (ProviderId::new(0), Intention::new(-0.9), true),
                (ProviderId::new(1), Intention::new(0.9), q % 2 == 0),
            ],
        );
    }
    let unhappy = registry.provider_satisfaction(ProviderId::new(0));
    let happy = registry.provider_satisfaction(ProviderId::new(1));
    assert!(unhappy.is_below(0.35), "unhappy provider at {unhappy}");
    assert!(!happy.is_below(0.35), "happy provider at {happy}");
    // Intention +0.9 maps to (0.9 + 1) / 2 = 0.95 per performed query.
    assert!((happy.value() - 0.95).abs() < 1e-9);
    assert!(happy < Satisfaction::MAX);
}
