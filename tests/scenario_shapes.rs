//! Shape tests: the qualitative claims of the paper's scenarios, checked at a
//! reduced scale with fixed seeds so they run in CI time.
//!
//! These complement `end_to_end.rs` (which checks mechanics) by pinning the
//! *direction* of the comparisons the paper makes: concentration of the
//! economic baseline, SbQA's load balance when participants are
//! performance-driven, and the scripted participant of Scenario 7 being
//! served by SbQA.

use sbqa::boinc::{Scenario, ScenarioId};

#[test]
fn economic_baseline_concentrates_load_more_than_capacity_baseline() {
    // Scenario 1's analysis: the bidding technique funnels work to the
    // fastest providers, the capacity technique spreads it.
    let outcome = Scenario::sized(ScenarioId::S1, 40, 80.0, 10.0)
        .run()
        .unwrap();
    let capacity = outcome.result_for("Capacity").unwrap();
    let economic = outcome.result_for("Economic").unwrap();
    assert!(
        economic.report.load_balance().gini > capacity.report.load_balance().gini,
        "economic Gini {:.3} should exceed capacity Gini {:.3}",
        economic.report.load_balance().gini,
        capacity.report.load_balance().gini
    );
}

#[test]
fn autonomous_baselines_lose_providers_that_captive_ones_keep() {
    // Scenario 2 vs Scenario 1: same techniques, same population; only the
    // departure rule differs.
    let captive = Scenario::sized(ScenarioId::S1, 40, 120.0, 10.0)
        .run()
        .unwrap();
    let autonomous = Scenario::sized(ScenarioId::S2, 40, 120.0, 10.0)
        .run()
        .unwrap();
    for label in ["Capacity", "Economic"] {
        let kept_captive = captive
            .result_for(label)
            .unwrap()
            .report
            .participants
            .final_providers;
        let kept_autonomous = autonomous
            .result_for(label)
            .unwrap()
            .report
            .participants
            .final_providers;
        assert_eq!(
            kept_captive, 40,
            "{label}: captive environments keep everyone"
        );
        assert!(
            kept_autonomous < kept_captive,
            "{label}: expected departures in the autonomous environment"
        );
    }
}

#[test]
fn performance_driven_intentions_make_sbqa_balance_load_best() {
    // Scenario 5: when providers only care about their load and consumers
    // about response times, SbQA's interest-following turns into load
    // balancing and beats the economic baseline's concentration.
    let outcome = Scenario::sized(ScenarioId::S5, 40, 120.0, 10.0)
        .run()
        .unwrap();
    let sbqa = outcome.result_for("SbQA").unwrap();
    let economic = outcome.result_for("Economic").unwrap();
    assert!(
        sbqa.report.load_balance().gini < economic.report.load_balance().gini,
        "SbQA Gini {:.3} should be below Economic Gini {:.3}",
        sbqa.report.load_balance().gini,
        economic.report.load_balance().gini
    );
    assert!(
        sbqa.report.response.mean() <= economic.report.response.mean() * 1.5,
        "SbQA mean response {:.3}s should not be far above Economic's {:.3}s",
        sbqa.report.response.mean(),
        economic.report.response.mean()
    );
}

#[test]
fn scripted_participant_is_served_by_sbqa() {
    // Scenario 7: the devoted volunteer reaches a high satisfaction under the
    // SQLB mediation; under the interest-blind baselines it either departs or
    // ends up strictly less satisfied.
    let outcome = Scenario::sized(ScenarioId::S7, 40, 150.0, 10.0)
        .run()
        .unwrap();
    let sbqa = outcome.result_for("SbQA").unwrap();
    let sbqa_focus = sbqa
        .focus_satisfaction
        .expect("the devoted volunteer stays online under SbQA");
    assert!(
        sbqa_focus > 0.6,
        "devoted volunteer satisfaction under SbQA was only {sbqa_focus:.3}"
    );
    for label in ["Capacity", "Economic"] {
        let baseline = outcome.result_for(label).unwrap();
        match baseline.focus_satisfaction {
            None => {} // departed: the mediation failed it completely
            Some(satisfaction) => assert!(
                satisfaction < sbqa_focus,
                "{label} served the scripted volunteer better ({satisfaction:.3}) than SbQA ({sbqa_focus:.3})"
            ),
        }
    }
}

#[test]
fn larger_kn_increases_proposal_pressure_on_providers() {
    // The kn axis of Scenario 6: with a very large kn most consulted
    // providers are never selected, so provider satisfaction (Definition 2)
    // drops relative to a small kn. Checked on the captive Scenario 3 setting
    // to keep the population constant.
    use sbqa::boinc::BoincPopulation;
    use sbqa::core::SbqaAllocator;
    use sbqa::sim::SimulationBuilder;

    let base = Scenario::sized(ScenarioId::S3, 40, 100.0, 10.0);
    let population = BoincPopulation::generate(&base.population);
    let run_with_kn = |kn: usize| {
        let system = base.sim.system.clone().with_knbest(20, kn);
        let sim = base.sim.clone().with_system(system.clone());
        SimulationBuilder::new(sim)
            .allocator(Box::new(SbqaAllocator::new(system, 42).unwrap()))
            .consumers(population.consumers.iter().cloned())
            .providers(population.providers.iter().cloned())
            .run()
            .unwrap()
    };
    let small = run_with_kn(2);
    let large = run_with_kn(16);
    assert!(
        large.final_provider_satisfaction() < small.final_provider_satisfaction(),
        "kn=16 provider satisfaction {:.3} should be below kn=2's {:.3}",
        large.final_provider_satisfaction(),
        small.final_provider_satisfaction()
    );
}
