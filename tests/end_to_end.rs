//! End-to-end integration tests spanning the whole workspace: population
//! generation → simulation → reports, for every allocation technique, in both
//! captive and autonomous environments.

use sbqa::baselines::build_allocator;
use sbqa::boinc::{BoincPopulation, PopulationConfig, Scenario, ScenarioId};
use sbqa::sim::{DeparturePolicy, SimulationBuilder, SimulationConfig, SimulationReport};
use sbqa::types::AllocationPolicyKind;

fn small_population() -> BoincPopulation {
    BoincPopulation::generate(
        &PopulationConfig::default()
            .with_volunteers(30)
            .with_arrival_rate(8.0)
            .with_seed(3),
    )
}

fn run_technique(
    kind: AllocationPolicyKind,
    departure: DeparturePolicy,
    duration: f64,
) -> SimulationReport {
    let population = small_population();
    let config = SimulationConfig {
        duration,
        sample_interval: 5.0,
        departure,
        ..SimulationConfig::default()
    };
    let allocator = build_allocator(kind, &config.system, config.seed).unwrap();
    SimulationBuilder::new(config)
        .allocator(allocator)
        .consumers(population.consumers.iter().cloned())
        .providers(population.providers.iter().cloned())
        .run()
        .unwrap()
}

#[test]
fn every_technique_completes_queries_on_the_boinc_population() {
    for kind in AllocationPolicyKind::all() {
        let report = run_technique(kind, DeparturePolicy::Captive, 60.0);
        assert_eq!(report.technique, kind.label());
        assert!(
            report.queries_issued > 0,
            "{}: no queries issued",
            kind.label()
        );
        assert!(
            report.response.completed() > 0,
            "{}: no queries completed",
            kind.label()
        );
        assert!(
            report.response.completion_rate() > 0.5,
            "{}: completion rate {:.2} too low",
            kind.label(),
            report.response.completion_rate()
        );
        assert!(report.response.mean() > 0.0);
        // Satisfaction values stay in the unit interval.
        let consumer = report.final_consumer_satisfaction();
        let provider = report.final_provider_satisfaction();
        assert!(
            (0.0..=1.0).contains(&consumer),
            "{}: {consumer}",
            kind.label()
        );
        assert!(
            (0.0..=1.0).contains(&provider),
            "{}: {provider}",
            kind.label()
        );
    }
}

#[test]
fn captive_environments_never_lose_participants() {
    for kind in AllocationPolicyKind::paper_policies() {
        let report = run_technique(kind, DeparturePolicy::Captive, 60.0);
        assert_eq!(
            report.participants.final_providers,
            report.participants.initial_providers
        );
        assert_eq!(
            report.participants.final_consumers,
            report.participants.initial_consumers
        );
        assert!((report.capacity_retention - 1.0).abs() < 1e-12);
    }
}

#[test]
fn sbqa_retains_at_least_as_many_providers_as_the_baselines() {
    // The headline claim of Scenario 4: in an autonomous environment the
    // satisfaction-aware allocator keeps more volunteers online than the
    // interest-blind baselines.
    let departure = DeparturePolicy::paper_autonomous();
    let sbqa = run_technique(AllocationPolicyKind::SbQA, departure, 150.0);
    let capacity = run_technique(AllocationPolicyKind::Capacity, departure, 150.0);
    let economic = run_technique(AllocationPolicyKind::Economic, departure, 150.0);

    assert!(
        sbqa.participants.final_providers >= capacity.participants.final_providers,
        "SbQA kept {} providers, Capacity kept {}",
        sbqa.participants.final_providers,
        capacity.participants.final_providers
    );
    assert!(
        sbqa.participants.final_providers >= economic.participants.final_providers,
        "SbQA kept {} providers, Economic kept {}",
        sbqa.participants.final_providers,
        economic.participants.final_providers
    );
    assert!(sbqa.capacity_retention >= capacity.capacity_retention);
}

#[test]
fn sbqa_provider_satisfaction_beats_interest_blind_baselines() {
    let departure = DeparturePolicy::Captive;
    let sbqa = run_technique(AllocationPolicyKind::SbQA, departure, 100.0);
    let capacity = run_technique(AllocationPolicyKind::Capacity, departure, 100.0);

    assert!(
        sbqa.final_provider_satisfaction() > capacity.final_provider_satisfaction(),
        "SbQA provider satisfaction {:.3} should exceed Capacity's {:.3}",
        sbqa.final_provider_satisfaction(),
        capacity.final_provider_satisfaction()
    );
}

#[test]
fn reports_expose_time_series_for_plotting() {
    let report = run_technique(AllocationPolicyKind::SbQA, DeparturePolicy::Captive, 60.0);
    for name in [
        "consumer_satisfaction",
        "provider_satisfaction",
        "online_providers",
        "mean_response_time",
    ] {
        let series = report
            .series_named(name)
            .unwrap_or_else(|| panic!("missing series {name}"));
        assert!(!series.is_empty(), "series {name} is empty");
    }
    // Load-balance report is well formed.
    let balance = report.load_balance();
    assert!(balance.providers > 0);
    assert!((0.0..=1.0).contains(&balance.gini));
}

#[test]
fn query_accounting_is_conserved_for_every_technique() {
    // Every issued query ends up in exactly one bucket: completed, starved,
    // or still unfinished when the run stops — under both environments.
    for departure in [
        DeparturePolicy::Captive,
        DeparturePolicy::paper_autonomous(),
    ] {
        for kind in AllocationPolicyKind::paper_policies() {
            let report = run_technique(kind, departure, 80.0);
            let accounted = report.response.completed()
                + report.response.starved()
                + report.response.unfinished();
            assert_eq!(
                accounted,
                report.queries_issued,
                "{} ({:?}): issued {} but accounted {}",
                kind.label(),
                departure,
                report.queries_issued,
                accounted
            );
            assert!((0.0..=1.0).contains(&report.capacity_retention));
            assert!(report.participants.final_providers <= report.participants.initial_providers);
            assert!(report.participants.final_consumers <= report.participants.initial_consumers);
        }
    }
}

#[test]
fn quick_scenarios_all_run() {
    for id in ScenarioId::all() {
        // Scenario 6 runs an 11-variant grid; shrink it further for CI time.
        let scenario = if id == ScenarioId::S6 {
            Scenario::sized(id, 20, 40.0, 6.0)
        } else {
            Scenario::sized(id, 25, 50.0, 6.0)
        };
        let outcome = scenario
            .run()
            .unwrap_or_else(|e| panic!("scenario {id:?}: {e}"));
        assert!(!outcome.results.is_empty());
        let rendered = outcome.table().render();
        assert!(rendered.contains("technique"));
        for result in &outcome.results {
            assert!(result.report.queries_issued > 0, "{}", result.label);
        }
    }
}

#[test]
fn identical_seeds_reproduce_identical_scenario_outcomes() {
    let run = || {
        Scenario::sized(ScenarioId::S3, 20, 40.0, 6.0)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.results.iter().zip(b.results.iter()) {
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.report.queries_issued, rb.report.queries_issued);
        assert_eq!(
            ra.report.response.completed(),
            rb.report.response.completed()
        );
        assert!((ra.report.response.mean() - rb.report.response.mean()).abs() < 1e-12);
        assert!(
            (ra.report.final_provider_satisfaction() - rb.report.final_provider_satisfaction())
                .abs()
                < 1e-12
        );
    }
}
