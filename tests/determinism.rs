//! Determinism regression tests for the allocation engine.
//!
//! The README promises byte-identical runs per seed. Before the
//! capability-indexed registry, the candidate set was collected by scanning a
//! `HashMap`, so candidate order — and with it the KnBest draw — depended on
//! hasher state rather than being deterministic by construction. The slab
//! registry keeps each capability's postings list sorted by provider id, so
//! two mediators built *in any registration order* must produce identical
//! selections for the same seed.

use sbqa::core::{Mediator, StaticIntentions};
use sbqa::types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig,
};

const PROVIDERS: u64 = 200;
const QUERIES: u64 = 1_000;

fn mediator_with_registration_order(seed: u64, ids: impl Iterator<Item = u64>) -> Mediator {
    let config = SystemConfig::default().with_knbest(20, 4);
    let mut mediator = Mediator::sbqa(config, seed).unwrap();
    for p in ids {
        mediator.register_provider(
            ProviderId::new(p),
            CapabilitySet::singleton(Capability::new((p % 4) as u8)),
            1.0 + (p % 3) as f64,
        );
    }
    mediator.register_consumer(ConsumerId::new(1));
    mediator
}

fn query(id: u64) -> Query {
    Query::builder(
        QueryId::new(id),
        ConsumerId::new(1),
        Capability::new((id % 4) as u8),
    )
    .replication(1 + (id % 2) as usize)
    .build()
}

/// A workload that alternates single-capability queries with conjunctive and
/// disjunctive multi-capability ones, so the trace covers the borrowed fast
/// path, the postings intersection and the postings union.
fn multicap_query(id: u64) -> Query {
    let a = Capability::new((id % 4) as u8);
    let b = Capability::new(((id + 1) % 4) as u8);
    let set = CapabilitySet::from_capabilities([a, b]);
    let required = match id % 3 {
        0 => CapabilityRequirement::single(a),
        1 => CapabilityRequirement::All(set),
        _ => CapabilityRequirement::Any(set),
    };
    Query::requiring(QueryId::new(id), ConsumerId::new(1), required)
        .replication(1 + (id % 2) as usize)
        .build()
}

/// Renders the full selection trace of one run as a byte string.
fn trace_with(mediator: &mut Mediator, make_query: impl Fn(u64) -> Query) -> String {
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));
    let mut trace = String::new();
    for id in 0..QUERIES {
        let q = make_query(id);
        match mediator.submit_in_place(&q, &oracle) {
            Ok(decision) => {
                trace.push_str(&format!("{id}:"));
                for provider in &decision.selected {
                    trace.push_str(&format!("{},", provider.raw()));
                }
            }
            Err(_) => trace.push_str(&format!("{id}:starved")),
        }
        trace.push('\n');
    }
    trace
}

fn selection_trace(mediator: &mut Mediator) -> String {
    trace_with(mediator, query)
}

#[test]
fn identical_mediators_produce_byte_identical_selections() {
    let mut forward = mediator_with_registration_order(42, 0..PROVIDERS);
    let mut reversed = mediator_with_registration_order(42, (0..PROVIDERS).rev());
    // An adversarial interleaved order for good measure.
    let interleaved = (0..PROVIDERS / 2).flat_map(|i| [i, PROVIDERS - 1 - i]);
    let mut shuffled = mediator_with_registration_order(42, interleaved);

    let reference = selection_trace(&mut forward);
    assert_eq!(
        reference,
        selection_trace(&mut reversed),
        "registration order must not influence selections"
    );
    assert_eq!(
        reference,
        selection_trace(&mut shuffled),
        "registration order must not influence selections"
    );
    assert!(reference.len() > QUERIES as usize * 3);
}

#[test]
fn different_seeds_diverge() {
    let mut a = mediator_with_registration_order(1, 0..PROVIDERS);
    let mut b = mediator_with_registration_order(2, 0..PROVIDERS);
    assert_ne!(selection_trace(&mut a), selection_trace(&mut b));
}

/// Like [`mediator_with_registration_order`], but providers advertise
/// overlapping two-class capability sets so multi-capability merges are
/// non-trivial (every `All`/`Any` pair over classes 0..4 has candidates).
fn multicap_mediator(seed: u64, ids: impl Iterator<Item = u64>) -> Mediator {
    let config = SystemConfig::default().with_knbest(20, 4);
    let mut mediator = Mediator::sbqa(config, seed).unwrap();
    for p in ids {
        let caps = CapabilitySet::from_capabilities([
            Capability::new((p % 4) as u8),
            Capability::new(((p + 1) % 4) as u8),
        ]);
        mediator.register_provider(ProviderId::new(p), caps, 1.0 + (p % 3) as f64);
    }
    mediator.register_consumer(ConsumerId::new(1));
    mediator
}

#[test]
fn multi_capability_merges_are_byte_identical_across_orders() {
    let mut forward = multicap_mediator(42, 0..PROVIDERS);
    let mut reversed = multicap_mediator(42, (0..PROVIDERS).rev());
    let interleaved = (0..PROVIDERS / 2).flat_map(|i| [i, PROVIDERS - 1 - i]);
    let mut shuffled = multicap_mediator(42, interleaved);

    let reference = trace_with(&mut forward, multicap_query);
    assert_eq!(
        reference,
        trace_with(&mut reversed, multicap_query),
        "registration order must not influence merged candidate sets"
    );
    assert_eq!(
        reference,
        trace_with(&mut shuffled, multicap_query),
        "registration order must not influence merged candidate sets"
    );
    // The workload genuinely mediates (no silent all-starved trace).
    assert!(!reference.contains("starved"));
}

#[test]
fn multi_capability_churn_preserves_determinism() {
    // Toggling providers offline and back re-inserts postings entries in
    // id-sorted positions; unregistering compacts the slab with swap-remove.
    // Neither may change what a merged Pq looks like to the allocator.
    let build = |churn: &[u64]| {
        let mut mediator = multicap_mediator(7, 0..PROVIDERS);
        for &p in churn {
            mediator
                .set_provider_online(ProviderId::new(p), false)
                .unwrap();
        }
        for &p in churn {
            mediator
                .set_provider_online(ProviderId::new(p), true)
                .unwrap();
        }
        mediator
    };
    let mut a = build(&[5, 10, 20, 40, 80]);
    let mut b = build(&[80, 40, 20, 10, 5]);
    assert_eq!(
        trace_with(&mut a, multicap_query),
        trace_with(&mut b, multicap_query)
    );
}

#[test]
fn churn_preserves_determinism() {
    // Unregistering compacts the slab with swap-remove; the candidate order
    // exposed to KnBest must stay id-sorted regardless of the slot layout.
    let build = |removal_order: &[u64]| {
        let mut mediator = mediator_with_registration_order(7, 0..PROVIDERS);
        for &p in removal_order {
            mediator
                .set_provider_online(ProviderId::new(p), false)
                .unwrap();
        }
        for &p in removal_order {
            mediator
                .set_provider_online(ProviderId::new(p), true)
                .unwrap();
        }
        mediator
    };
    let mut a = build(&[3, 9, 27, 81]);
    let mut b = build(&[81, 27, 9, 3]);
    assert_eq!(selection_trace(&mut a), selection_trace(&mut b));
}
