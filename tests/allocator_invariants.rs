//! Property-based integration tests: invariants every allocation technique
//! must uphold when plugged into the shared `QueryAllocator` interface,
//! whatever its internal principle.

use proptest::prelude::*;

use sbqa::baselines::build_allocator;
use sbqa::core::allocator::{Candidates, ProviderSnapshot, StaticIntentions};
use sbqa::core::ProviderRegistry;
use sbqa::satisfaction::SatisfactionRegistry;
use sbqa::types::{
    AllocationPolicyKind, Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention,
    ProviderId, Query, QueryId, SystemConfig,
};

fn candidates(utilizations: &[f64]) -> Vec<ProviderSnapshot> {
    utilizations
        .iter()
        .enumerate()
        .map(|(i, u)| ProviderSnapshot {
            id: ProviderId::new(i as u64),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0 + (i % 3) as f64,
            utilization: *u,
            queue_length: (*u).round() as usize,
            online: true,
        })
        .collect()
}

fn query(replication: usize) -> Query {
    Query::builder(QueryId::new(7), ConsumerId::new(1), Capability::new(0))
        .replication(replication)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every technique selects the right number of distinct providers, all of
    /// them drawn from the candidate set, and reports every selected provider
    /// among its proposals.
    #[test]
    fn all_techniques_respect_the_allocation_contract(
        utilizations in proptest::collection::vec(0.0f64..20.0, 1..40),
        replication in 1usize..5,
        consumer_default in -1.0f64..=1.0,
        provider_default in -1.0f64..=1.0,
        seed in 0u64..500,
    ) {
        let pool = candidates(&utilizations);
        let q = query(replication);
        let config = SystemConfig::default();
        let satisfaction = SatisfactionRegistry::new(config.satisfaction_window);
        let oracle = StaticIntentions::new().with_defaults(
            Intention::new(consumer_default),
            Intention::new(provider_default),
        );

        for kind in AllocationPolicyKind::all() {
            let mut allocator = build_allocator(kind, &config, seed).unwrap();
            let decision = allocator
                .allocate(&q, Candidates::from_slice(&pool), &oracle, &satisfaction)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));

            // Never starved on a non-empty candidate set.
            prop_assert!(!decision.is_starved(), "{} starved", kind.label());

            // Selection size: min(q.n, what the technique is willing to use),
            // never more than q.n or the population.
            prop_assert!(decision.selected.len() <= replication.min(pool.len()));

            // Selected providers are distinct members of the candidate set.
            let mut ids: Vec<u64> = decision.selected.iter().map(|p| p.raw()).collect();
            ids.sort_unstable();
            let mut deduped = ids.clone();
            deduped.dedup();
            prop_assert_eq!(ids.len(), deduped.len(), "{} selected duplicates", kind.label());
            for id in &decision.selected {
                prop_assert!(pool.iter().any(|s| s.id == *id));
            }

            // Every selected provider appears in the proposals, flagged selected.
            for id in &decision.selected {
                let proposal = decision
                    .proposals
                    .iter()
                    .find(|p| p.provider == *id)
                    .unwrap_or_else(|| panic!("{}: {id} missing from proposals", kind.label()));
                prop_assert!(proposal.selected);
            }
            // And no proposal lies about being selected.
            for proposal in &decision.proposals {
                prop_assert_eq!(
                    proposal.selected,
                    decision.selected.contains(&proposal.provider)
                );
            }
        }
    }

    /// Baselines with full-coverage replication pick the providers their
    /// principle promises: the capacity baseline never selects a strictly
    /// more relatively-utilized provider while skipping a strictly less
    /// utilized one when replication is 1.
    #[test]
    fn capacity_baseline_picks_a_least_relatively_utilized_provider(
        utilizations in proptest::collection::vec(0.0f64..20.0, 2..30),
        seed in 0u64..100,
    ) {
        let pool = candidates(&utilizations);
        let q = query(1);
        let config = SystemConfig::default();
        let satisfaction = SatisfactionRegistry::new(config.satisfaction_window);
        let oracle = StaticIntentions::new();
        let mut allocator = build_allocator(AllocationPolicyKind::Capacity, &config, seed).unwrap();
        let decision = allocator.allocate(&q, Candidates::from_slice(&pool), &oracle, &satisfaction).unwrap();
        let chosen = decision.selected[0];
        let relative = |s: &ProviderSnapshot| s.utilization / s.capacity;
        let chosen_rel = relative(pool.iter().find(|s| s.id == chosen).unwrap());
        let best = pool
            .iter()
            .map(relative)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(chosen_rel <= best + 1e-9);
    }

    /// Every technique — SbQA and all five baselines — honours
    /// multi-capability requirements when fed the registry's merged
    /// candidate view: whatever providers it selects satisfy the query's
    /// `All`/`Any` requirement, and selections stay within the merged set.
    #[test]
    fn all_techniques_honour_multi_capability_requirements(
        masks in proptest::collection::vec(1u8..16, 2..30),
        req_mask in 1u8..16,
        conjunctive in proptest::bool::ANY,
        replication in 1usize..4,
        seed in 0u64..200,
    ) {
        let capability_set = |mask: u8| {
            CapabilitySet::from_capabilities(
                (0..4u8).filter(|class| mask & (1 << class) != 0).map(Capability::new),
            )
        };
        let mut registry = ProviderRegistry::new();
        for (i, mask) in masks.iter().enumerate() {
            registry.register(ProviderId::new(i as u64), capability_set(*mask), 1.0 + (i % 3) as f64);
        }
        let set = capability_set(req_mask);
        let required = if conjunctive {
            CapabilityRequirement::All(set)
        } else {
            CapabilityRequirement::Any(set)
        };
        let q = Query::requiring(QueryId::new(7), ConsumerId::new(1), required)
            .replication(replication)
            .build();

        let config = SystemConfig::default();
        let satisfaction = SatisfactionRegistry::new(config.satisfaction_window);
        let oracle = StaticIntentions::new()
            .with_defaults(Intention::new(0.4), Intention::new(0.2));

        let merged = registry.capable_of(&q);
        for kind in AllocationPolicyKind::all() {
            let mut allocator = build_allocator(kind, &config, seed).unwrap();
            let result = allocator.allocate(
                &q,
                Candidates::from_slice(&merged),
                &oracle,
                &satisfaction,
            );
            if merged.is_empty() {
                prop_assert!(result.is_err(), "{} mediated an empty Pq", kind.label());
                continue;
            }
            let decision = result.unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            prop_assert!(!decision.is_starved(), "{} starved", kind.label());
            for id in &decision.selected {
                let snapshot = merged
                    .iter()
                    .find(|s| s.id == *id)
                    .unwrap_or_else(|| panic!("{}: {id} outside merged Pq", kind.label()));
                prop_assert!(
                    snapshot.can_perform(&q),
                    "{}: selected {id} cannot perform {}", kind.label(), required
                );
            }
        }
    }

    /// The SbQA decision's ω always lies in [0, 1] and its scores are finite,
    /// whatever intentions the participants express.
    #[test]
    fn sbqa_scores_and_omega_are_well_formed(
        utilizations in proptest::collection::vec(0.0f64..20.0, 1..30),
        consumer_default in -1.0f64..=1.0,
        provider_default in -1.0f64..=1.0,
        seed in 0u64..100,
    ) {
        let pool = candidates(&utilizations);
        let q = query(2);
        let config = SystemConfig::default();
        let satisfaction = SatisfactionRegistry::new(config.satisfaction_window);
        let oracle = StaticIntentions::new().with_defaults(
            Intention::new(consumer_default),
            Intention::new(provider_default),
        );
        let mut allocator = build_allocator(AllocationPolicyKind::SbQA, &config, seed).unwrap();
        let decision = allocator.allocate(&q, Candidates::from_slice(&pool), &oracle, &satisfaction).unwrap();
        let omega = decision.omega.expect("SbQA reports omega");
        prop_assert!((0.0..=1.0).contains(&omega));
        for proposal in &decision.proposals {
            let score = proposal.score.expect("SbQA scores every proposal");
            prop_assert!(score.is_finite());
        }
    }
}
