//! Golden-output regression test for a multi-capability workload.
//!
//! The single-capability golden (`tests/golden_scenario1.rs`) cannot see the
//! postings-merge path at all, so this test pins a small simulation whose
//! queries mix the borrowed fast path with `All` intersections and `Any`
//! unions (via the workload model's multi-capability mix) over a provider
//! population with skewed, overlapping capability sets. If a change
//! legitimately alters the merge or the RNG consumption pattern, re-pin the
//! constants deliberately using the dump this test prints.

use sbqa::core::intention::{ConsumerProfile, ProviderProfile};
use sbqa::core::SbqaAllocator;
use sbqa::sim::{
    ConsumerSpec, NetworkConfig, ProviderSpec, SimulationBuilder, SimulationConfig, WorkloadModel,
};
use sbqa::types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId, SystemConfig,
};

/// Expected outcome: (queries issued, completed, starved, total performed,
/// mean consumer satisfaction, mean provider satisfaction).
const GOLDEN: (u64, u64, u64, u64, f64, f64) = (367, 367, 0, 454, 0.500000000000, 0.568750000000);

fn set(classes: &[u8]) -> CapabilitySet {
    CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
}

/// A 30-provider population with skewed class coverage: class 0 is common,
/// class 1 moderate, class 2 rare — so intersections are much smaller than
/// unions and the merge order matters.
fn providers() -> Vec<ProviderSpec> {
    (0..30u64)
        .map(|i| {
            let caps = match i % 10 {
                0..=4 => set(&[0]),
                5..=6 => set(&[0, 1]),
                7..=8 => set(&[1, 2]),
                _ => set(&[0, 1, 2]),
            };
            ProviderSpec::new(
                ProviderId::new(100 + i),
                caps,
                1.0 + (i % 3) as f64,
                ProviderProfile::default(),
            )
        })
        .collect()
}

fn consumers() -> Vec<ConsumerSpec> {
    vec![
        // Base single-capability consumer whose queries sometimes widen to
        // All{0,1} / Any{0,1} through the workload mix.
        ConsumerSpec::new(
            ConsumerId::new(1),
            Capability::new(0),
            2.0,
            0.5,
            1,
            ConsumerProfile::default(),
        )
        .with_extra_capabilities(set(&[1])),
        // A consumer whose base requirement is already a conjunction over the
        // rare intersection {1, 2}.
        ConsumerSpec::new(
            ConsumerId::new(2),
            Capability::new(1),
            1.0,
            0.5,
            2,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::All(set(&[1, 2]))),
        // A disjunctive consumer: anyone speaking class 0 or class 2 will do.
        ConsumerSpec::new(
            ConsumerId::new(3),
            Capability::new(2),
            1.5,
            0.5,
            1,
            ConsumerProfile::default(),
        )
        .with_requirement(CapabilityRequirement::Any(set(&[0, 2]))),
    ]
}

#[test]
fn multicap_workload_seed42_matches_golden_outputs() {
    let config = SimulationConfig {
        system: SystemConfig::default().with_knbest(10, 4),
        duration: 80.0,
        sample_interval: 10.0,
        network: NetworkConfig::instantaneous(),
        ..SimulationConfig::default()
    }
    .with_seed(42);

    let report = SimulationBuilder::new(config.clone())
        .allocator(Box::new(
            SbqaAllocator::new(config.system.clone(), config.seed).unwrap(),
        ))
        .consumers(consumers())
        .providers(providers())
        .workload(WorkloadModel::default().with_multi_capability_mix(0.5, 0.4))
        .run()
        .unwrap();

    let total_performed: u64 = report.queries_per_provider.iter().map(|(_, n)| n).sum();
    // On drift, this dump is the replacement for the GOLDEN tuple.
    println!(
        "({}, {}, {}, {}, {:.12}, {:.12})",
        report.queries_issued,
        report.response.completed(),
        report.response.starved(),
        total_performed,
        report.satisfaction.mean_consumer_satisfaction(),
        report.satisfaction.mean_provider_satisfaction(),
    );

    let (issued, completed, starved, performed, consumer_sat, provider_sat) = GOLDEN;
    assert_eq!(report.queries_issued, issued, "queries issued");
    assert_eq!(report.response.completed(), completed, "completed");
    assert_eq!(report.response.starved(), starved, "starved");
    assert_eq!(total_performed, performed, "selection counts");
    assert!(
        (report.satisfaction.mean_consumer_satisfaction() - consumer_sat).abs() < 1e-9,
        "mean consumer satisfaction drifted to {}",
        report.satisfaction.mean_consumer_satisfaction()
    );
    assert!(
        (report.satisfaction.mean_provider_satisfaction() - provider_sat).abs() < 1e-9,
        "mean provider satisfaction drifted to {}",
        report.satisfaction.mean_provider_satisfaction()
    );
}
